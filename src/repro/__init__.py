"""Minesweeper reproduction: SMT-based network configuration verification.

Reimplements the system from *A General Approach to Network Configuration
Verification* (Beckett, Gupta, Mahajan, Walker -- SIGCOMM 2017): router
configurations are translated into a logical formula whose satisfying
assignments are the stable states of the routing control plane; properties
are verified by conjoining their negation and checking satisfiability.

Public entry points::

    from repro import load_network, Network, Verifier
    from repro.core import properties

    net = load_network("configs/")          # directory of router configs
    verifier = Verifier(net)
    result = verifier.verify(properties.Reachability(sources=["R3"],
                                                     dest_router="R1"))
    result.holds, result.counterexample
"""

import sys as _sys

# Network encodings nest if-then-else chains proportionally to topology
# diameter; bump the interpreter limit once, at import.
if _sys.getrecursionlimit() < 100000:
    _sys.setrecursionlimit(100000)

__version__ = "1.0.0"

# Imported before core/net so deep layers can `from repro import obs`
# without tripping over the partially-initialized package.
from repro import obs  # noqa: E402,F401
from repro.core import (  # noqa: E402
    BatchEngine,
    BatchQuery,
    EncoderOptions,
    NetworkEncoder,
    VerificationResult,
    Verifier,
)
from repro.net import (  # noqa: E402
    Network,
    NetworkBuilder,
    load_network,
    network_from_texts,
)

__all__ = [
    "Network", "NetworkBuilder", "load_network", "network_from_texts",
    "Verifier", "VerificationResult", "EncoderOptions", "NetworkEncoder",
    "BatchEngine", "BatchQuery", "obs",
    "__version__",
]
