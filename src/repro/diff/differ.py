"""Compute verdict diffs between two config trees.

The differ runs the same query list against the OLD and NEW networks
through the batch engine with a shared verdict cache.  Queries whose
dependency-slice hash is unchanged get the *same* cache key on both
sides, so one solve (or a warm-cache replay) covers both; only queries
whose slice the edit touched are re-verified per side.  Verdict flips
are read off the two result columns — counterexamples for new
violations always come from a fresh NEW-side solve, because a flip
implies the slice hashes differ and slice-changed queries are never
replayed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro import obs
from repro.analysis.deps import device_hash
from repro.core.encoder import EncoderOptions
from repro.core.engine import BatchEngine, BatchQuery
from repro.core.verifier import VerificationResult
from repro.net import load_network
from repro.net.topology import Network
from .cache import VerdictCache

__all__ = [
    "ConeStat",
    "DiffError",
    "DiffReport",
    "QueryDiff",
    "changed_devices",
    "diff_networks",
    "diff_trees",
]


class DiffError(Exception):
    """The diff could not be computed (unreadable/unparsable tree)."""


@dataclass
class ConeStat:
    """Size of one query's dependency slice on the NEW network.

    ``cacheable`` is False when the dependency analysis refuses the
    query entirely (unknown property class, unstable peer names);
    ``bounded`` is False when it falls back to the every-fragment cone.
    """

    name: str
    cacheable: bool
    bounded: bool = False
    devices: int = 0
    fragments: int = 0
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cacheable": self.cacheable,
            "bounded": self.bounded,
            "devices": self.devices,
            "fragments": self.fragments,
            "reason": self.reason,
        }


@dataclass
class QueryDiff:
    """One query's verdicts on both sides of the edit."""

    name: str
    old: VerificationResult
    new: VerificationResult

    @property
    def flipped(self) -> bool:
        return (
            self.old.holds is not None
            and self.new.holds is not None
            and self.old.holds != self.new.holds
        )

    @property
    def new_violation(self) -> bool:
        return self.new.holds is False and self.old.holds is not False

    @property
    def resolved(self) -> bool:
        return self.old.holds is False and self.new.holds is not False


@dataclass
class DiffReport:
    """Everything ``repro diff`` reports."""

    old_dir: str
    new_dir: str
    changed_devices: List[str] = field(default_factory=list)
    added_devices: List[str] = field(default_factory=list)
    removed_devices: List[str] = field(default_factory=list)
    queries: List[QueryDiff] = field(default_factory=list)
    cone_stats: List[ConeStat] = field(default_factory=list)
    seconds: float = 0.0
    #: content hashes of the two trees (canonical device forms), the
    #: run ledger's reproducibility anchor for diff invocations
    old_hash: str = ""
    new_hash: str = ""

    @property
    def flips(self) -> List[QueryDiff]:
        return [q for q in self.queries if q.flipped]

    @property
    def new_violations(self) -> List[QueryDiff]:
        return [q for q in self.queries if q.new_violation]

    @property
    def resolved(self) -> List[QueryDiff]:
        return [q for q in self.queries if q.resolved]

    def reverified(self) -> List[str]:
        """Queries that needed a fresh NEW-side solve."""
        return [q.name for q in self.queries if not q.new.cached]

    def replayed(self) -> List[str]:
        """Queries whose NEW-side verdict came from the cache."""
        return [q.name for q in self.queries if q.new.cached]

    @property
    def exit_code(self) -> int:
        return 1 if self.new_violations else 0


def changed_devices(old: Network, new: Network):
    """Hostnames whose canonical config differs, plus added/removed."""
    changed, added, removed = [], [], []
    for name in sorted(set(old.devices) | set(new.devices)):
        dev_old = old.devices.get(name)
        dev_new = new.devices.get(name)
        if dev_old is None:
            added.append(name)
        elif dev_new is None:
            removed.append(name)
        elif device_hash(dev_old) != device_hash(dev_new):
            changed.append(name)
    return changed, added, removed


def diff_networks(
    old: Network,
    new: Network,
    queries: Sequence,
    *,
    options: Optional[EncoderOptions] = None,
    conflict_budget: Optional[int] = None,
    workers: int = 1,
    cache: Optional[VerdictCache] = None,
    old_dir: str = "<old>",
    new_dir: str = "<new>",
    cone_stats: bool = False,
) -> DiffReport:
    """Diff two already-built networks over a fixed query list.

    With ``cone_stats=True`` the report also records how large each
    query's dependency slice is on the NEW network (device and
    fragment counts), so the effect of the dataflow cone tightening is
    observable from the CLI.
    """
    start = time.perf_counter()
    if cache is None:
        cache = VerdictCache()
    batch = [
        q if isinstance(q, BatchQuery) else BatchQuery(prop=q)
        for q in queries
    ]
    changed, added, removed = changed_devices(old, new)
    from repro.obs.ledger import network_hash

    report = DiffReport(
        old_dir=old_dir,
        new_dir=new_dir,
        changed_devices=changed,
        added_devices=added,
        removed_devices=removed,
        old_hash=network_hash(old),
        new_hash=network_hash(new),
    )
    with obs.span(
        "diff.run", queries=len(batch), changed_devices=len(changed)
    ):
        # OLD side first: its solves warm the cache, so every query with
        # an unchanged slice replays instantly on the NEW side.
        with obs.span("diff.verify_old"):
            engine = BatchEngine(
                old,
                options=options,
                conflict_budget=conflict_budget,
                workers=workers,
                verdict_cache=cache,
            )
            old_results = engine.run(batch)
        with obs.span("diff.verify_new"):
            engine = BatchEngine(
                new,
                options=options,
                conflict_budget=conflict_budget,
                workers=workers,
                verdict_cache=cache,
            )
            new_results = engine.run(batch)
    for query, old_res, new_res in zip(batch, old_results, new_results):
        report.queries.append(
            QueryDiff(name=query.name(), old=old_res, new=new_res)
        )
    if cone_stats:
        report.cone_stats = _cone_stats(new, batch, options)
    report.seconds = time.perf_counter() - start
    return report


def _cone_stats(
    network: Network, batch: List[BatchQuery], options
) -> List[ConeStat]:
    from repro.analysis.deps import query_cone

    stats = []
    with obs.span("diff.cone_stats", queries=len(batch)):
        for query in batch:
            try:
                cone = query_cone(
                    network,
                    query.prop,
                    max_failures=query.max_failures,
                    assumptions=query.assumptions,
                    options=options,
                )
            except Exception:  # mirror the engine: analysis never fatal
                cone = None
            if cone is None:
                stats.append(ConeStat(name=query.name(), cacheable=False))
                continue
            stats.append(
                ConeStat(
                    name=query.name(),
                    cacheable=True,
                    bounded=cone.bounded,
                    devices=sum(
                        1 for frags in cone.fragments.values() if frags
                    ),
                    fragments=cone.total_fragments(),
                    reason=cone.reason,
                )
            )
    return stats


def diff_trees(
    old_dir: str,
    new_dir: str,
    queries: Sequence,
    *,
    options: Optional[EncoderOptions] = None,
    conflict_budget: Optional[int] = None,
    workers: int = 1,
    cache: Optional[VerdictCache] = None,
    cone_stats: bool = False,
) -> DiffReport:
    """Parse both config trees and diff the query verdicts.

    Raises :class:`DiffError` when either tree cannot be read or
    parsed (the CLI maps this to exit code 2).
    """
    try:
        old = load_network(old_dir)
    except Exception as exc:
        raise DiffError(f"cannot load OLD tree {old_dir}: {exc}") from exc
    try:
        new = load_network(new_dir)
    except Exception as exc:
        raise DiffError(f"cannot load NEW tree {new_dir}: {exc}") from exc
    return diff_networks(
        old,
        new,
        queries,
        options=options,
        conflict_budget=conflict_budget,
        workers=workers,
        cache=cache,
        old_dir=str(old_dir),
        new_dir=str(new_dir),
        cone_stats=cone_stats,
    )
