"""Persistent verdict cache keyed by (query, slice-hash, options).

Keys come from :func:`repro.analysis.deps.cache_key`; a key already
encodes the query identity, the SHA-256 of the query's dependency
slice, and the semantic encoder-option fingerprint, so a lookup hit
means the stored verdict is provably identical to a fresh solve.
UNKNOWN verdicts (conflict-budget exhaustion) are never stored — they
are budget-dependent, not config-dependent.

The on-disk format is a single JSON object; unknown versions are
ignored (treated as empty) rather than rejected, so format evolutions
degrade to a cold cache instead of an error.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Dict, Optional

__all__ = ["VerdictCache"]

_FORMAT_VERSION = 1


class VerdictCache:
    """A mapping of cache keys to verdict records.

    Records are plain dicts with ``holds`` (bool) and ``message``
    (str).  The cache satisfies the duck-typed interface the batch
    engine expects: ``get(key)`` and ``put(key, record)``.

    Thread-safe: one cache may be shared by concurrent verify
    requests (the ``repro serve`` daemon is thread-per-request), so
    lookups, inserts, and the dump in :meth:`save` all serialize on an
    internal lock.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._data: Dict[str, dict] = {}
        self._lock = threading.Lock()
        self.dirty = False

    @classmethod
    def load(cls, path: str) -> "VerdictCache":
        """Load a cache file; a missing or unreadable file is an empty
        cache (cold start), never an error."""
        cache = cls(path)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return cache
        if (
            isinstance(payload, dict)
            and payload.get("version") == _FORMAT_VERSION
            and isinstance(payload.get("verdicts"), dict)
        ):
            for key, record in payload["verdicts"].items():
                if isinstance(record, dict) and isinstance(
                    record.get("holds"), bool
                ):
                    cache._data[key] = record
        return cache

    def save(self, path: Optional[str] = None) -> None:
        """Atomically write the cache (write-temp + rename)."""
        target = path or self.path
        if target is None:
            raise ValueError("no cache path to save to")
        # Snapshot under the lock (records are never mutated in place,
        # so a shallow copy is a consistent point-in-time view) and
        # clear ``dirty`` at snapshot time: a concurrent put lands
        # either in this dump or re-dirties for the next one.
        with self._lock:
            payload = {
                "version": _FORMAT_VERSION,
                "verdicts": dict(self._data),
            }
            self.dirty = False
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            os.replace(tmp, target)
        except BaseException:
            with self._lock:
                self.dirty = True
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            return self._data.get(key)

    def put(self, key: str, record: dict) -> None:
        if record.get("holds") is None:
            return
        with self._lock:
            self._data[key] = {
                "holds": bool(record["holds"]),
                "message": record.get("message", ""),
            }
            self.dirty = True

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data
