"""Differential verification: re-verify only what an edit can affect.

``repro diff OLD_DIR NEW_DIR`` parses both config trees, detects the
changed devices, replays cached verdicts for every query whose
dependency slice (:mod:`repro.analysis.deps`) is untouched, re-verifies
the rest through the batch engine, and reports verdict flips with
CI-friendly exit codes (0 = no new violations, 1 = new violations,
2 = error).
"""

from .cache import VerdictCache
from .differ import (
    ConeStat,
    DiffError,
    DiffReport,
    QueryDiff,
    changed_devices,
    diff_networks,
    diff_trees,
)
from .report import render_text, to_json

__all__ = [
    "ConeStat",
    "DiffError",
    "DiffReport",
    "QueryDiff",
    "VerdictCache",
    "changed_devices",
    "diff_networks",
    "diff_trees",
    "render_text",
    "to_json",
]
