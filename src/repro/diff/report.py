"""Render a :class:`~repro.diff.differ.DiffReport` as text or JSON.

The JSON form is the machine-readable CI artifact; ``schema_version``
guards downstream consumers against silent format drift.
"""

from __future__ import annotations

from typing import Optional

from .differ import DiffReport, QueryDiff

__all__ = ["render_text", "to_json"]

_STATUS = {True: "HOLDS", False: "VIOLATED", None: "UNKNOWN"}


def _verdict(result) -> str:
    text = _STATUS[result.holds]
    if result.cached:
        text += " (cached)"
    return text


def render_text(report: DiffReport) -> str:
    lines = [f"diff {report.old_dir} -> {report.new_dir}"]
    if report.changed_devices:
        lines.append(
            f"changed devices ({len(report.changed_devices)}): "
            + ", ".join(report.changed_devices)
        )
    if report.added_devices:
        lines.append("added devices: " + ", ".join(report.added_devices))
    if report.removed_devices:
        lines.append("removed devices: " + ", ".join(report.removed_devices))
    if not (
        report.changed_devices
        or report.added_devices
        or report.removed_devices
    ):
        lines.append("no device-level changes")
    lines.append("")
    for query in report.queries:
        marker = "  "
        if query.new_violation:
            marker = "!!"
        elif query.flipped:
            marker = "~~"
        lines.append(
            f"{marker} {query.name}: {_verdict(query.old)} -> "
            f"{_verdict(query.new)}"
        )
        if query.new_violation:
            if query.new.message:
                lines.append(f"     {query.new.message}")
            if query.new.counterexample is not None:
                summary = query.new.counterexample.summary()
                lines.append("     " + summary.replace("\n", "\n     "))
    if report.cone_stats:
        lines.append("")
        lines.append("dependency cones (NEW tree):")
        for stat in report.cone_stats:
            if not stat.cacheable:
                lines.append(f"   {stat.name}: not cacheable")
                continue
            detail = (
                f"{stat.fragments} fragments on {stat.devices} device(s)"
            )
            if not stat.bounded:
                detail += " [unbounded"
                if stat.reason:
                    detail += f": {stat.reason}"
                detail += "]"
            lines.append(f"   {stat.name}: {detail}")
    lines.append("")
    replayed = len(report.replayed())
    lines.append(
        f"{len(report.queries)} queries: {replayed} replayed "
        f"from cache, {len(report.queries) - replayed} re-verified"
    )
    lines.append(
        f"{len(report.flips)} verdict flip(s), "
        f"{len(report.new_violations)} new violation(s), "
        f"{len(report.resolved)} resolved ({report.seconds:.2f}s)"
    )
    return "\n".join(lines)


def _query_json(query: QueryDiff) -> dict:
    entry = {
        "name": query.name,
        "old": {
            "holds": query.old.holds,
            "cached": query.old.cached,
            "message": query.old.message,
        },
        "new": {
            "holds": query.new.holds,
            "cached": query.new.cached,
            "message": query.new.message,
        },
        "flipped": query.flipped,
        "new_violation": query.new_violation,
        "resolved": query.resolved,
    }
    if query.new.counterexample is not None:
        entry["counterexample"] = query.new.counterexample.summary()
    return entry


def to_json(report: DiffReport, exit_code: Optional[int] = None) -> dict:
    return {
        "schema_version": 1,
        "old_dir": report.old_dir,
        "new_dir": report.new_dir,
        "changed_devices": report.changed_devices,
        "added_devices": report.added_devices,
        "removed_devices": report.removed_devices,
        "queries": [_query_json(q) for q in report.queries],
        "replayed": report.replayed(),
        "reverified": report.reverified(),
        "flips": [q.name for q in report.flips],
        "new_violations": [q.name for q in report.new_violations],
        "resolved": [q.name for q in report.resolved],
        "seconds": report.seconds,
        "exit_code": report.exit_code if exit_code is None else exit_code,
        **(
            {"cone_stats": [s.to_dict() for s in report.cone_stats]}
            if report.cone_stats
            else {}
        ),
    }
