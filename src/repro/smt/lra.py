"""Exact linear rational arithmetic for the lazy load-balancing check.

The load-balancing property (§5 of the paper) introduces real-valued flow
totals.  Given a concrete boolean forwarding assignment those totals are the
unique solution of a linear system, so we do not need a full simplex inside
the SAT search: the verifier solves the booleans first, then calls
:func:`solve_linear_system` with exact ``Fraction`` arithmetic and blocks the
assignment if an inequality fails (a classic lazy DPLL(T) refinement).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LinExpr", "solve_linear_system"]


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + const`` over rationals."""

    def __init__(self, coeffs: Optional[Dict[str, Fraction]] = None,
                 const: Fraction = Fraction(0)) -> None:
        self.coeffs: Dict[str, Fraction] = dict(coeffs or {})
        self.const = Fraction(const)

    @classmethod
    def var(cls, name: str) -> "LinExpr":
        return cls({name: Fraction(1)})

    @classmethod
    def constant(cls, value) -> "LinExpr":
        return cls({}, Fraction(value))

    def __add__(self, other: "LinExpr") -> "LinExpr":
        coeffs = dict(self.coeffs)
        for name, c in other.coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + c
        return LinExpr(coeffs, self.const + other.const)

    def __sub__(self, other: "LinExpr") -> "LinExpr":
        return self + other * Fraction(-1)

    def __mul__(self, scalar) -> "LinExpr":
        k = Fraction(scalar)
        return LinExpr({n: c * k for n, c in self.coeffs.items()},
                       self.const * k)

    __rmul__ = __mul__

    def variables(self) -> List[str]:
        return [n for n, c in self.coeffs.items() if c != 0]

    def evaluate(self, env: Dict[str, Fraction]) -> Fraction:
        total = self.const
        for name, c in self.coeffs.items():
            total += c * env[name]
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c}*{n}" for n, c in sorted(self.coeffs.items())]
        parts.append(str(self.const))
        return " + ".join(parts)


def solve_linear_system(
        equations: Sequence[Tuple[LinExpr, LinExpr]],
) -> Optional[Dict[str, Fraction]]:
    """Solve ``lhs = rhs`` equations by Gauss-Jordan elimination.

    Returns a variable assignment, with free variables (if the system is
    under-determined) fixed to zero, or ``None`` if inconsistent.
    """
    variables = sorted({
        name
        for lhs, rhs in equations
        for name in (*lhs.variables(), *rhs.variables())
    })
    index = {name: i for i, name in enumerate(variables)}
    n = len(variables)
    rows: List[List[Fraction]] = []
    for lhs, rhs in equations:
        row = [Fraction(0)] * (n + 1)
        diff = lhs - rhs
        for name, c in diff.coeffs.items():
            if c != 0:
                row[index[name]] += c
        row[n] = -diff.const
        rows.append(row)

    pivot_row = 0
    pivot_cols: List[int] = []
    for col in range(n):
        pivot = next((r for r in range(pivot_row, len(rows))
                      if rows[r][col] != 0), None)
        if pivot is None:
            continue
        rows[pivot_row], rows[pivot] = rows[pivot], rows[pivot_row]
        factor = rows[pivot_row][col]
        rows[pivot_row] = [x / factor for x in rows[pivot_row]]
        for r in range(len(rows)):
            if r != pivot_row and rows[r][col] != 0:
                scale = rows[r][col]
                rows[r] = [a - scale * b
                           for a, b in zip(rows[r], rows[pivot_row])]
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == len(rows):
            break

    # Inconsistency: a zero row with non-zero constant.
    for r in range(pivot_row, len(rows)):
        if all(x == 0 for x in rows[r][:n]) and rows[r][n] != 0:
            return None

    env = {name: Fraction(0) for name in variables}
    for r, col in enumerate(pivot_cols):
        value = rows[r][n]
        for other in range(col + 1, n):
            value -= rows[r][other] * env[variables[other]]
        env[variables[col]] = value
    return env
