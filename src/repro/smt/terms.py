"""Hash-consed term language for the SMT layer.

The Minesweeper encoding only needs a small logic fragment:

* booleans with the usual connectives,
* fixed-width unsigned bit-vectors with addition, equality and unsigned
  comparison (routes carry small integer attributes such as metrics and
  prefix lengths; the packet destination is a 32-bit vector),
* if-then-else over both sorts,
* single-bit extraction (used for prefix matches against constants).

Terms are immutable and hash-consed per :class:`Context`: structurally equal
terms are the *same* Python object, so identity comparison, ``id()`` based
memo tables and ``in`` checks are all structural.  Smart constructors perform
light simplification (constant folding, flattening, unit laws) at build time,
which keeps downstream bit-blasting small without a separate rewriting pass.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

__all__ = [
    "Context",
    "Term",
    "BOOL",
    "TRUE",
    "FALSE",
    "bool_var",
    "not_",
    "and_",
    "or_",
    "implies",
    "iff",
    "xor",
    "ite",
    "bv_sort",
    "bv_val",
    "bv_var",
    "bv_add",
    "bv_ite",
    "eq",
    "ne",
    "ule",
    "ult",
    "uge",
    "ugt",
    "bit",
    "at_most_k",
    "at_least_k",
    "exactly_k",
    "default_context",
]

# Sort representation: ("bool",) for booleans, ("bv", width) for bit-vectors.
BOOL: Tuple[str, ...] = ("bool",)


def bv_sort(width: int) -> Tuple[str, int]:
    """The sort of unsigned bit-vectors of the given positive width."""
    if width <= 0:
        raise ValueError(f"bit-vector width must be positive, got {width}")
    return ("bv", width)


class Term:
    """A node in the hash-consed term DAG.

    Attributes:
        kind: operator tag (``"and"``, ``"bvvar"``, ...).
        args: child terms (a tuple; empty for leaves).
        payload: leaf data — variable name, constant value, or bit index.
        sort: ``BOOL`` or ``("bv", width)``.
        tid: dense per-context integer id (stable creation order).
    """

    __slots__ = ("kind", "args", "payload", "sort", "tid", "ctx", "_hash")

    def __init__(self, ctx: "Context", kind: str, args: Tuple["Term", ...],
                 payload, sort: Tuple, tid: int):
        self.ctx = ctx
        self.kind = kind
        self.args = args
        self.payload = payload
        self.sort = sort
        self.tid = tid
        self._hash = hash((kind, tuple(a.tid for a in args), payload, sort))

    # Hash-consing makes identity equality structural; inherit object.__eq__.
    def __hash__(self) -> int:
        return self._hash

    @property
    def width(self) -> int:
        """Width of a bit-vector term; raises for booleans."""
        if self.sort[0] != "bv":
            raise TypeError(f"term {self} is not a bit-vector")
        return self.sort[1]

    @property
    def is_bool(self) -> bool:
        return self.sort is BOOL or self.sort == BOOL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Term {self._pp()}>"

    def _pp(self, depth: int = 0) -> str:
        if depth > 4:
            return "..."
        if self.kind in ("true", "false"):
            return self.kind
        if self.kind in ("boolvar", "bvvar"):
            return str(self.payload)
        if self.kind == "bvval":
            return f"{self.payload}#{self.width}"
        if self.kind == "bit":
            return f"bit({self.args[0]._pp(depth + 1)}, {self.payload})"
        inner = " ".join(a._pp(depth + 1) for a in self.args)
        return f"({self.kind} {inner})"

    # Convenience operator sugar (bit-vector only where unambiguous).
    def __add__(self, other: "Term") -> "Term":
        return bv_add(self, other)

    def __le__(self, other: "Term") -> "Term":
        return ule(self, other)

    def __lt__(self, other: "Term") -> "Term":
        return ult(self, other)

    def __ge__(self, other: "Term") -> "Term":
        return uge(self, other)

    def __gt__(self, other: "Term") -> "Term":
        return ugt(self, other)

    def __and__(self, other: "Term") -> "Term":
        return and_(self, other)

    def __or__(self, other: "Term") -> "Term":
        return or_(self, other)

    def __invert__(self) -> "Term":
        return not_(self)


class Context:
    """Owns the intern table for a family of terms.

    Terms from different contexts must not be mixed; the module-level
    :func:`default_context` suffices for nearly all uses, but isolated
    contexts let long-running processes bound intern-table growth.
    """

    def __init__(self) -> None:
        self._intern: dict = {}
        self._next_id = 0
        self.true = self._mk("true", (), None, BOOL)
        self.false = self._mk("false", (), None, BOOL)

    def _mk(self, kind: str, args: Tuple[Term, ...], payload, sort) -> Term:
        key = (kind, tuple(a.tid for a in args), payload, sort)
        found = self._intern.get(key)
        if found is not None:
            return found
        term = Term(self, kind, args, payload, sort, self._next_id)
        self._next_id += 1
        self._intern[key] = term
        return term

    def size(self) -> int:
        """Number of distinct terms interned so far."""
        return len(self._intern)


_DEFAULT_CONTEXT = Context()


def default_context() -> Context:
    return _DEFAULT_CONTEXT


def _ctx_of(*terms: Term) -> Context:
    ctx = terms[0].ctx
    for t in terms[1:]:
        if t.ctx is not ctx:
            raise ValueError("cannot mix terms from different contexts")
    return ctx


TRUE = _DEFAULT_CONTEXT.true
FALSE = _DEFAULT_CONTEXT.false


# ---------------------------------------------------------------------------
# Boolean constructors
# ---------------------------------------------------------------------------

def bool_var(name: str, ctx: Optional[Context] = None) -> Term:
    """A named boolean variable."""
    ctx = ctx or _DEFAULT_CONTEXT
    return ctx._mk("boolvar", (), name, BOOL)


def not_(a: Term) -> Term:
    _require_bool(a)
    ctx = a.ctx
    if a.kind == "true":
        return ctx.false
    if a.kind == "false":
        return ctx.true
    if a.kind == "not":
        return a.args[0]
    return ctx._mk("not", (a,), None, BOOL)


def and_(*args: Union[Term, Iterable[Term]]) -> Term:
    """N-ary conjunction with flattening, unit laws and complement check."""
    return _nary("and", _flatten_args(args))


def or_(*args: Union[Term, Iterable[Term]]) -> Term:
    """N-ary disjunction with flattening, unit laws and complement check."""
    return _nary("or", _flatten_args(args))


def _flatten_args(args) -> list:
    out = []
    for a in args:
        if isinstance(a, Term):
            out.append(a)
        else:
            out.extend(a)
    return out


def _nary(kind: str, args: Sequence[Term]) -> Term:
    if not args:
        ctx = _DEFAULT_CONTEXT
    else:
        ctx = _ctx_of(*args)
    unit = ctx.true if kind == "and" else ctx.false
    absorbing = ctx.false if kind == "and" else ctx.true
    flat: list = []
    seen = set()
    for a in args:
        _require_bool(a)
        if a is unit:
            continue
        if a is absorbing:
            return absorbing
        children = a.args if a.kind == kind else (a,)
        for c in children:
            if c is unit:
                continue
            if c is absorbing:
                return absorbing
            if c.tid in seen:
                continue
            seen.add(c.tid)
            flat.append(c)
    # Complement detection: x and not(x) together.
    for c in flat:
        comp = c.args[0].tid if c.kind == "not" else None
        if comp is not None and comp in seen:
            return absorbing
    if not flat:
        return unit
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda t: t.tid)
    return ctx._mk(kind, tuple(flat), None, BOOL)


def implies(a: Term, b: Term) -> Term:
    return or_(not_(a), b)


def iff(a: Term, b: Term) -> Term:
    _require_bool(a)
    _require_bool(b)
    ctx = _ctx_of(a, b)
    if a is b:
        return ctx.true
    if a.kind == "true":
        return b
    if a.kind == "false":
        return not_(b)
    if b.kind == "true":
        return a
    if b.kind == "false":
        return not_(a)
    if not_(a) is b:
        return ctx.false
    lo, hi = (a, b) if a.tid <= b.tid else (b, a)
    return ctx._mk("iff", (lo, hi), None, BOOL)


def xor(a: Term, b: Term) -> Term:
    return not_(iff(a, b))


def ite(cond: Term, then: Term, els: Term) -> Term:
    """If-then-else over booleans or equal-width bit-vectors."""
    _require_bool(cond)
    ctx = _ctx_of(cond, then, els)
    if then.sort != els.sort:
        raise TypeError("ite branches must share a sort")
    if cond.kind == "true":
        return then
    if cond.kind == "false":
        return els
    if then is els:
        return then
    if then.is_bool:
        if then.kind == "true" and els.kind == "false":
            return cond
        if then.kind == "false" and els.kind == "true":
            return not_(cond)
        if then.kind == "true":
            return or_(cond, els)
        if then.kind == "false":
            return and_(not_(cond), els)
        if els.kind == "true":
            return or_(not_(cond), then)
        if els.kind == "false":
            return and_(cond, then)
        return ctx._mk("ite", (cond, then, els), None, BOOL)
    return ctx._mk("bvite", (cond, then, els), None, then.sort)


# ---------------------------------------------------------------------------
# Bit-vector constructors
# ---------------------------------------------------------------------------

def bv_val(value: int, width: int, ctx: Optional[Context] = None) -> Term:
    """An unsigned bit-vector constant (value taken modulo ``2**width``)."""
    ctx = ctx or _DEFAULT_CONTEXT
    sort = bv_sort(width)
    return ctx._mk("bvval", (), value & ((1 << width) - 1), sort)


def bv_var(name: str, width: int, ctx: Optional[Context] = None) -> Term:
    """A named unsigned bit-vector variable."""
    ctx = ctx or _DEFAULT_CONTEXT
    return ctx._mk("bvvar", (), name, bv_sort(width))


def bv_add(a: Term, b: Term) -> Term:
    """Modular addition of equal-width bit-vectors."""
    _require_same_bv(a, b)
    ctx = a.ctx
    if a.kind == "bvval" and b.kind == "bvval":
        return bv_val(a.payload + b.payload, a.width, ctx)
    if a.kind == "bvval" and a.payload == 0:
        return b
    if b.kind == "bvval" and b.payload == 0:
        return a
    lo, hi = (a, b) if a.tid <= b.tid else (b, a)
    return ctx._mk("bvadd", (lo, hi), None, a.sort)


def bv_ite(cond: Term, then: Term, els: Term) -> Term:
    return ite(cond, then, els)


def eq(a: Term, b: Term) -> Term:
    """Equality over booleans (iff) or equal-width bit-vectors."""
    if a.is_bool and b.is_bool:
        return iff(a, b)
    _require_same_bv(a, b)
    ctx = a.ctx
    if a is b:
        return ctx.true
    if a.kind == "bvval" and b.kind == "bvval":
        return ctx.true if a.payload == b.payload else ctx.false
    lo, hi = (a, b) if a.tid <= b.tid else (b, a)
    return ctx._mk("eq", (lo, hi), None, BOOL)


def ne(a: Term, b: Term) -> Term:
    return not_(eq(a, b))


def ule(a: Term, b: Term) -> Term:
    """Unsigned ``a <= b``."""
    _require_same_bv(a, b)
    ctx = a.ctx
    if a is b:
        return ctx.true
    if a.kind == "bvval" and b.kind == "bvval":
        return ctx.true if a.payload <= b.payload else ctx.false
    if a.kind == "bvval" and a.payload == 0:
        return ctx.true
    maxv = (1 << a.width) - 1
    if b.kind == "bvval" and b.payload == maxv:
        return ctx.true
    return ctx._mk("ule", (a, b), None, BOOL)


def ult(a: Term, b: Term) -> Term:
    """Unsigned ``a < b``."""
    _require_same_bv(a, b)
    ctx = a.ctx
    if a is b:
        return ctx.false
    if a.kind == "bvval" and b.kind == "bvval":
        return ctx.true if a.payload < b.payload else ctx.false
    if b.kind == "bvval" and b.payload == 0:
        return ctx.false
    return ctx._mk("ult", (a, b), None, BOOL)


def uge(a: Term, b: Term) -> Term:
    return ule(b, a)


def ugt(a: Term, b: Term) -> Term:
    return ult(b, a)


def bit(a: Term, index: int) -> Term:
    """Boolean extraction of bit ``index`` (LSB = 0) of a bit-vector."""
    if a.sort[0] != "bv":
        raise TypeError("bit() expects a bit-vector")
    if not 0 <= index < a.width:
        raise IndexError(f"bit index {index} out of range for width {a.width}")
    ctx = a.ctx
    if a.kind == "bvval":
        return ctx.true if (a.payload >> index) & 1 else ctx.false
    if a.kind == "bvite":
        return ite(a.args[0], bit(a.args[1], index), bit(a.args[2], index))
    return ctx._mk("bit", (a,), index, BOOL)


# ---------------------------------------------------------------------------
# Cardinality (sequential counter encodings at the term level)
# ---------------------------------------------------------------------------

def at_most_k(bits: Sequence[Term], k: int) -> Term:
    """True iff at most ``k`` of ``bits`` are true (sequential counter)."""
    bits = list(bits)
    if k < 0:
        return bits[0].ctx.false if bits else FALSE
    if k >= len(bits):
        return bits[0].ctx.true if bits else TRUE
    counts = _counter(bits, k + 1)
    # at-most-k: the (k+1)-th counter output must be false.
    return not_(counts[k])


def at_least_k(bits: Sequence[Term], k: int) -> Term:
    """True iff at least ``k`` of ``bits`` are true."""
    bits = list(bits)
    if k <= 0:
        return bits[0].ctx.true if bits else TRUE
    if k > len(bits):
        return bits[0].ctx.false if bits else FALSE
    counts = _counter(bits, k)
    return counts[k - 1]


def exactly_k(bits: Sequence[Term], k: int) -> Term:
    return and_(at_most_k(bits, k), at_least_k(bits, k))


def _counter(bits: Sequence[Term], depth: int) -> list:
    """``out[j]`` is true iff at least ``j+1`` of ``bits`` are true.

    Classic unary sequential counter, truncated at ``depth`` outputs.
    """
    ctx = _ctx_of(*bits)
    out = [ctx.false] * depth
    for b in bits:
        nxt = list(out)
        for j in range(depth - 1, 0, -1):
            nxt[j] = or_(out[j], and_(b, out[j - 1]))
        nxt[0] = or_(out[0], b)
        out = nxt
    return out


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _require_bool(a: Term) -> None:
    if not a.is_bool:
        raise TypeError(f"expected boolean term, got sort {a.sort}")


def _require_same_bv(a: Term, b: Term) -> None:
    if a.sort[0] != "bv" or b.sort[0] != "bv":
        raise TypeError("expected bit-vector terms")
    if a.sort != b.sort:
        raise TypeError(f"width mismatch: {a.sort[1]} vs {b.sort[1]}")
    if a.ctx is not b.ctx:
        raise ValueError("cannot mix terms from different contexts")
