"""User-facing SMT solver facade.

Couples the term language, bit-blaster, Tseitin transform and CDCL core into
a small Z3-like API::

    s = Solver()
    s.add(eq(x, bv_val(3, 8)))
    if s.check() == SAT:
        print(s.model().eval(x))

Checks are incremental in the clause-adding sense: terms asserted after a
``check`` extend the same CNF (the CDCL core supports adding clauses between
calls), which the lazy load-balancing refinement loop relies on.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Union

from repro import obs
from repro.obs import log as obslog
from .bitblast import Blaster
from .evaluator import evaluate
from .sat import SatSolver
from .sat.portfolio import PortfolioError, default_configs, race
from .terms import Term
from .tseitin import CnfBuilder

__all__ = ["Solver", "Model", "Result", "SAT", "UNSAT", "UNKNOWN"]


class Result:
    """Tri-state check outcome, compares equal to itself only.

    Truthiness is deliberately partial: ``bool(SAT)`` is True and
    ``bool(UNSAT)`` is False, but ``bool(UNKNOWN)`` raises — a
    budget-exhausted check is not evidence of anything, and treating it
    as falsy silently conflates "no violation found" with "gave up".
    Compare outcomes with ``is SAT`` / ``is UNSAT`` / ``is UNKNOWN``.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __bool__(self) -> bool:
        if self.name == "unknown":
            raise TypeError(
                "UNKNOWN check result has no truth value; compare with "
                "`is SAT` / `is UNSAT` / `is UNKNOWN` instead of bool()")
        return self.name == "sat"


SAT = Result("sat")
UNSAT = Result("unsat")
UNKNOWN = Result("unknown")


class Model:
    """A satisfying assignment, queried by variable or by term."""

    def __init__(self, env: Dict[str, Union[bool, int]]) -> None:
        self._env = env

    def value(self, name: str, default=None):
        """Raw value of a named variable (bool or int), or ``default``."""
        return self._env.get(name, default)

    def eval(self, term: Term) -> Union[bool, int]:
        """Evaluate an arbitrary term under this model."""
        return evaluate(term, self._env)

    def env(self) -> Dict[str, Union[bool, int]]:
        """A copy of the raw name → value map (only constrained vars)."""
        return dict(self._env)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        items = ", ".join(f"{k}={v}" for k, v in sorted(self._env.items()))
        return f"<Model {items}>"


class Solver:
    """Assert terms, check satisfiability, extract models.

    Args:
        conflict_budget: optional per-check CDCL conflict cap; exceeded
            checks return :data:`UNKNOWN`.
        progress_interval: sample the CDCL counters every N conflicts
            during :meth:`check` (see ``last_check_progress``); 0 turns
            sampling off entirely.
        preprocess: run the SatELite-style CNF simplification pipeline
            (subsumption, self-subsuming resolution, pure-literal and
            bounded variable elimination) before search.  The facade
            freezes every assumption literal, and the solver's
            reconstruction stack rebuilds eliminated variables for
            model extraction, so results and models are identical
            with it on or off.
        portfolio: with ``portfolio > 1``, each :meth:`check` races that
            many diversified solver processes over the CNF instead of
            solving in-process (see :mod:`repro.smt.sat.portfolio`).
            Loading and preprocessing still happen exactly once, in
            process; only the CDCL search is raced, over the already
            simplified clause database.
            Verdicts and models are deterministic for a fixed portfolio
            size regardless of which worker finishes first; if the race
            machinery fails (spawn/pickling), the check falls back to
            the serial path with a :class:`RuntimeWarning` and a
            ``sat.portfolio_fallback`` metric tick.
    """

    def __init__(self, conflict_budget: Optional[int] = None,
                 progress_interval: int = 4096,
                 preprocess: bool = True,
                 portfolio: int = 1) -> None:
        if portfolio < 1:
            raise ValueError("portfolio must be >= 1")
        self._blaster = Blaster()
        self._cnf = CnfBuilder()
        self._sat = SatSolver()
        self._sat.preprocess_enabled = preprocess
        self.preprocess = preprocess
        self.portfolio = portfolio
        # Winner's extended model from the last portfolio SAT (indexed
        # by DIMACS var - 1); None whenever the last check was serial.
        self._portfolio_model: Optional[List[bool]] = None
        self._num_clauses_loaded = 0
        self._assertions: List[Term] = []
        # Assumption terms keep their definitional literal across checks so
        # repeated assumption-based checks (the batch engine's pattern)
        # don't re-blast or re-emit gate clauses per call.
        self._assumption_lit_cache: Dict[int, int] = {}
        self.conflict_budget = conflict_budget
        self.progress_interval = progress_interval
        self.last_check_seconds = 0.0
        self.last_check_conflicts = 0
        # Periodic CDCL snapshots from the most recent check — the data
        # behind conflict-budget burn-down diagnostics on UNKNOWN.
        self.last_check_progress: List[Dict[str, int]] = []

    # ------------------------------------------------------------------

    def add(self, *terms: Term, label: str = "") -> None:
        """Assert one or more boolean terms.

        ``label`` attributes the CNF growth (variables/clauses) of this
        batch of assertions to a pipeline module — ``network``,
        ``property``, ``instrumentation``, ... — in the telemetry layer.
        """
        with obs.span("smt.add", module=label, terms=len(terms)) as sp:
            vars_before = self._cnf.num_vars
            clauses_before = len(self._cnf.clauses)
            for term in terms:
                if not term.is_bool:
                    raise TypeError("assertions must be boolean terms")
                self._assertions.append(term)
                blasted = self._blaster.blast(term)
                self._cnf.assert_term(blasted)
            dv = self._cnf.num_vars - vars_before
            dc = len(self._cnf.clauses) - clauses_before
            sp.set(vars=dv, clauses=dc)
            if dv or dc:
                metrics = obs.metrics()
                metrics.counter("cnf.vars",
                                module=label or "unattributed").inc(dv)
                metrics.counter("cnf.clauses",
                                module=label or "unattributed").inc(dc)

    def assertions(self) -> List[Term]:
        return list(self._assertions)

    def check(self, assumptions: Sequence[Term] = ()) -> Result:
        """Solve the current assertions (optionally under assumptions).

        Assumptions hold for this call only: the solver stays reusable for
        later checks with different (or no) assumptions, and clauses added
        between checks extend the same CNF incrementally.  Each assumption
        term is mapped to a definitional literal emitted for both
        polarities (it may be assumed either way across calls); the
        mapping is cached per term so repeated batch checks are cheap.
        """
        with obs.span("smt.assume", terms=len(assumptions)):
            assumption_lits = []
            for term in assumptions:
                lit = self._assumption_lit_cache.get(term.tid)
                if lit is None:
                    blasted = self._blaster.blast(term)
                    lit = self._cnf.literal_for(blasted)
                    self._assumption_lit_cache[term.tid] = lit
                assumption_lits.append(lit)
        self._portfolio_model = None
        with obs.span("sat.load") as sp_load:
            loaded_from = self._num_clauses_loaded
            self._load_clauses()
            sp_load.set(clauses=self._num_clauses_loaded - loaded_from)
        sat = self._sat
        if self.preprocess:
            # Freeze everything the outside world may still reference,
            # then run the (gated) simplification pipeline under its own
            # span so per-technique reductions are attributable.
            self._freeze_protected(assumption_lits)
            with obs.span("sat.preprocess") as sp_pp:
                before_pp = sat.stats()
                sat.simplify()
                self._record_preprocess(sp_pp, before_pp, sat.stats())
        if self.portfolio > 1 and not sat.root_conflict:
            result = self._check_portfolio(assumption_lits)
            if result is not None:
                return result
            # Race machinery unavailable; continue on the serial path
            # (the clause DB above is already loaded and simplified).
        progress = self.last_check_progress = []
        if self.progress_interval:
            sat.progress_interval = self.progress_interval
            sat.progress_hook = progress.append
        with obs.span("sat.solve", assumptions=len(assumption_lits)) as sp:
            before = sat.stats()
            start = time.perf_counter()
            outcome = sat.solve(assumption_lits,
                                conflict_budget=self.conflict_budget)
            self.last_check_seconds = time.perf_counter() - start
            after = sat.stats()
            sat.progress_hook = None
            self.last_check_conflicts = (after["conflicts"]
                                         - before["conflicts"])
            result = (UNKNOWN if outcome is None
                      else SAT if outcome else UNSAT)
            sp.set(outcome=result.name,
                   conflicts=self.last_check_conflicts,
                   decisions=after["decisions"] - before["decisions"],
                   propagations=(after["propagations"]
                                 - before["propagations"]),
                   restarts=after["restarts"] - before["restarts"])
            metrics = obs.metrics()
            if metrics.enabled:
                for key in ("conflicts", "decisions", "propagations",
                            "restarts", "learned_deleted"):
                    metrics.counter(f"sat.{key}").inc(after[key]
                                                      - before[key])
                metrics.gauge("sat.learned").set(after["learned"])
                metrics.histogram("sat.solve_seconds").observe(
                    self.last_check_seconds)
        return result

    def _check_portfolio(self, assumption_lits: List[int],
                         ) -> Optional[Result]:
        """Race ``self.portfolio`` solver processes over the current CNF.

        The expensive, configuration-independent work — clause loading
        and the preprocessing pipeline — already happened once in the
        in-process solver (the caller runs the same preamble as a
        serial check), so the race ships the *simplified* clause
        database (problem clauses, learnts, root-level units) and the
        workers race only the search, with ``preprocess=False``.  A
        SAT winner's model is extended over the variables the parent's
        preprocessor eliminated via the reconstruction stack.

        Returns the check result, or None if the race machinery failed
        (caller falls back to the serial path on the same, already
        simplified solver state).
        """
        workers = self.portfolio
        sat = self._sat

        def dimacs(lit: int) -> int:
            var = (lit >> 1) + 1
            return -var if lit & 1 else var

        clauses = [[dimacs(lit) for lit in lits]
                   for lits in sat.clause_lists()]
        clauses.extend([dimacs(lit) for lit in lits]
                       for lits, _ in sat.learnt_lists())
        clauses.extend([dimacs(lit)] for lit in sat.root_literals())
        try:
            cpus = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            cpus = os.cpu_count() or 1
        with obs.span("sat.portfolio", workers=workers, cpus=cpus,
                      assumptions=len(assumption_lits)) as sp:
            start = time.perf_counter()
            try:
                raced = race(clauses, sat.num_vars,
                             assumptions=assumption_lits,
                             conflict_budget=self.conflict_budget,
                             preprocess=False,
                             configs=default_configs(workers))
            except PortfolioError as exc:
                obslog.warn_event(
                    "sat.portfolio_fallback",
                    f"portfolio solving unavailable ({exc}); "
                    "falling back to a serial solve",
                    stacklevel=3, workers=workers, error=str(exc))
                obs.metrics().counter("sat.portfolio_fallback").inc()
                sp.set(outcome="fallback")
                return None
            self.last_check_seconds = time.perf_counter() - start
            self.last_check_progress = []
            stats = raced.stats
            self.last_check_conflicts = stats.get("conflicts", 0)
            self._portfolio_model = (
                sat.extend_external_model(raced.model)
                if raced.model is not None else None)
            result = (UNKNOWN if raced.outcome is None
                      else SAT if raced.outcome else UNSAT)
            sp.set(outcome=result.name, winner_seed=raced.winner.seed,
                   conflicts=self.last_check_conflicts,
                   reported=len(raced.worker_outcomes))
            metrics = obs.metrics()
            if metrics.enabled:
                metrics.counter("sat.portfolio_races").inc()
                metrics.counter("sat.portfolio_workers").inc(workers)
                for key in ("conflicts", "decisions", "propagations",
                            "restarts", "learned_deleted"):
                    metrics.counter(f"sat.{key}").inc(stats.get(key, 0))
                metrics.gauge("sat.learned").set(stats.get("learned", 0))
                metrics.histogram("sat.solve_seconds").observe(
                    self.last_check_seconds)
        return result

    def _model_value(self, var: int) -> bool:
        if self._portfolio_model is not None:
            index = var - 1
            if index >= len(self._portfolio_model):
                return False
            return self._portfolio_model[index]
        return self._sat.model_value(var)

    def model(self) -> Model:
        """Model of the most recent :data:`SAT` check."""
        env: Dict[str, Union[bool, int]] = {}
        bv_parts: Dict[str, int] = {}
        for var, leaf in self._cnf.leaf_of_var.items():
            val = self._model_value(var)
            if leaf.kind == "boolvar":
                env[leaf.payload] = val
            else:  # bit(bvvar, i)
                name = leaf.args[0].payload
                if val:
                    bv_parts[name] = (bv_parts.get(name, 0)
                                      | (1 << leaf.payload))
                else:
                    bv_parts.setdefault(name, 0)
        env.update(bv_parts)
        return Model(env)

    # ------------------------------------------------------------------
    # Introspection used by benchmarks and tests
    # ------------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return self._cnf.num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._cnf.clauses)

    @property
    def stats(self) -> Dict[str, int]:
        out = {"vars": self._cnf.num_vars,
               "clauses": len(self._cnf.clauses)}
        out.update(self._sat.stats())
        return out

    def _load_clauses(self) -> None:
        clauses = self._cnf.clauses
        self._sat.ensure_vars(self._cnf.num_vars)
        for i in range(self._num_clauses_loaded, len(clauses)):
            self._sat.add_clause(clauses[i])
        self._num_clauses_loaded = len(clauses)

    # ------------------------------------------------------------------
    # CNF preprocessing plumbing
    # ------------------------------------------------------------------

    def _freeze_protected(self, assumption_lits: Sequence[int]) -> None:
        """Freeze the SAT variables the preprocessor must not touch.

        Only assumption literals need freezing — that covers the batch
        engine's activation literals, which arrive here as assumptions.
        Model-readable variables (the CNF leaves) do *not* need it: the
        solver's reconstruction stack answers ``model_value`` exactly
        for eliminated variables, and clauses or assumptions that later
        mention one transparently restore it.  Leaving leaves free is
        what lets elimination reach the encoder's single-use
        definitional gates.
        """
        sat = self._sat
        for lit in assumption_lits:
            sat.freeze(abs(lit))

    @staticmethod
    def _record_preprocess(sp, before: Dict[str, int],
                           after: Dict[str, int]) -> None:
        sp.set(runs=after["pp_runs"] - before["pp_runs"],
               live_clauses=after["live_clauses"],
               removed=(after["pp_removed_clauses"]
                        - before["pp_removed_clauses"]),
               subsumed=after["pp_subsumed"] - before["pp_subsumed"],
               strengthened=(after["pp_strengthened"]
                             - before["pp_strengthened"]),
               eliminated=(after["pp_eliminated_vars"]
                           - before["pp_eliminated_vars"]),
               pure=(after["pp_pure_literals"]
                     - before["pp_pure_literals"]))
        metrics = obs.metrics()
        if metrics.enabled and after["pp_runs"] > before["pp_runs"]:
            for key in ("pp_units", "pp_pure_literals", "pp_subsumed",
                        "pp_strengthened", "pp_eliminated_vars",
                        "pp_resolvents", "pp_removed_clauses"):
                metrics.counter(f"sat.{key}").inc(after[key] - before[key])
            metrics.gauge("sat.live_clauses").set(after["live_clauses"])

    def run_preprocess(self) -> Dict[str, int]:
        """Force one preprocessing run now; returns per-technique deltas.

        Loads any pending clauses, freezes the protected variables and
        runs the pipeline unconditionally (bypassing the growth gate).
        Used by benchmarks and tests to measure clause reduction without
        a full :meth:`check`.
        """
        sat = self._sat
        with obs.span("sat.preprocess", forced=True) as sp_pp:
            self._load_clauses()
            self._freeze_protected(())
            before = sat.stats()
            sat.simplify(force=True)
            after = sat.stats()
            self._record_preprocess(sp_pp, before, after)
        delta = {key: after[key] - before[key]
                 for key in after if key.startswith("pp_")}
        delta["live_clauses_before"] = before["live_clauses"]
        delta["live_clauses_after"] = after["live_clauses"]
        return delta
