"""Tseitin transformation with Plaisted-Greenbaum polarity reduction.

Takes pure boolean terms (post bit-blasting) and emits CNF clauses over SAT
variables.  Each distinct gate gets one definitional variable; clauses are
emitted only for the polarities in which a gate is actually used, which is
sound for satisfiability and preserves the values of the *input* variables
in any model — all the solver facade needs to reconstruct term-level models.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .terms import Term

__all__ = ["CnfBuilder"]

_POS = 1
_NEG = 2
_BOTH = 3

_LEAF_KINDS = frozenset(["boolvar", "bit"])


class CnfBuilder:
    """Accumulates CNF for a sequence of asserted boolean terms.

    Attributes:
        clauses: list of clauses; a clause is a list of non-zero ints in
            DIMACS convention (positive = variable true).
        var_of_leaf: term id → SAT variable for input leaves, used by the
            model reconstruction in :mod:`repro.smt.solver`.
    """

    def __init__(self) -> None:
        self.clauses: List[List[int]] = []
        self.num_vars = 0
        self.var_of_leaf: Dict[int, int] = {}
        self.leaf_of_var: Dict[int, Term] = {}
        self._gate_var: Dict[int, int] = {}
        self._emitted: Dict[int, int] = {}  # gate tid -> polarity mask done
        self._const_true_var: int = 0

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits: List[int]) -> None:
        self.clauses.append(lits)

    def assert_term(self, term: Term) -> None:
        """Add clauses forcing ``term`` to be true."""
        if term.kind == "true":
            return
        if term.kind == "false":
            # Assert a trivially unsatisfiable clause.
            self.add_clause([])
            return
        lit = self._literal(term, _POS)
        self.add_clause([lit])

    def literal_for(self, term: Term) -> int:
        """Definitional literal for a term, usable as a solver assumption.

        Emits clauses for both polarities since an assumption may be asserted
        either way across calls.
        """
        if term.kind == "true":
            return self._true_lit()
        if term.kind == "false":
            return -self._true_lit()
        return self._literal(term, _BOTH)

    def _true_lit(self) -> int:
        if not self._const_true_var:
            self._const_true_var = self.new_var()
            self.add_clause([self._const_true_var])
        return self._const_true_var

    # ------------------------------------------------------------------
    # Core encoding
    # ------------------------------------------------------------------

    def _literal(self, term: Term, polarity: int) -> int:
        """Return a literal equisatisfiable with ``term``; emit gate clauses.

        Iterative two-phase DFS: first allocate variables / push children,
        then emit the definitional clauses for the required polarities.
        """
        # Work items: (term, polarity, expanded?)
        stack: List[Tuple[Term, int, bool]] = [(term, polarity, False)]
        while stack:
            node, pol, expanded = stack.pop()
            if node.kind == "not":
                # Push through negations without allocating a gate.
                stack.append((node.args[0], _flip(pol), expanded))
                continue
            if node.kind in _LEAF_KINDS:
                self._leaf_var(node)
                continue
            if node.kind in ("true", "false"):
                continue
            if expanded:
                # Children are processed; emit this gate's clauses for the
                # polarities recorded at expansion time.
                self._emit_gate(node, pol)
                continue
            done = self._emitted.get(node.tid, 0)
            need = pol & ~done
            if not need:
                continue
            self._emitted[node.tid] = done | need
            stack.append((node, need, True))
            for child, child_pol in _child_polarities(node, need):
                stack.append((child, child_pol, False))
        return self._lit_of(term)

    def _lit_of(self, node: Term) -> int:
        """Literal of an already-processed node (negations folded in)."""
        sign = 1
        while node.kind == "not":
            sign = -sign
            node = node.args[0]
        if node.kind == "true":
            return sign * self._true_lit()
        if node.kind == "false":
            return -sign * self._true_lit()
        if node.kind in _LEAF_KINDS:
            return sign * self._leaf_var(node)
        return sign * self._gate_var[node.tid]

    def _leaf_var(self, node: Term) -> int:
        var = self.var_of_leaf.get(node.tid)
        if var is None:
            var = self.new_var()
            self.var_of_leaf[node.tid] = var
            self.leaf_of_var[var] = node
        return var

    def _gate(self, node: Term) -> int:
        var = self._gate_var.get(node.tid)
        if var is None:
            var = self.new_var()
            self._gate_var[node.tid] = var
        return var

    def _emit_gate(self, node: Term, need: int) -> None:
        if not need:
            return
        g = self._gate(node)
        kind = node.kind
        if kind == "and":
            lits = [self._lit_of(c) for c in node.args]
            if need & _POS:  # g -> each child
                for lit in lits:
                    self.add_clause([-g, lit])
            if need & _NEG:  # all children -> g
                self.add_clause([g] + [-lit for lit in lits])
        elif kind == "or":
            lits = [self._lit_of(c) for c in node.args]
            if need & _POS:  # g -> some child
                self.add_clause([-g] + lits)
            if need & _NEG:  # each child -> g
                for lit in lits:
                    self.add_clause([-lit, g])
        elif kind == "iff":
            a = self._lit_of(node.args[0])
            b = self._lit_of(node.args[1])
            if need & _POS:
                self.add_clause([-g, -a, b])
                self.add_clause([-g, a, -b])
            if need & _NEG:
                self.add_clause([g, a, b])
                self.add_clause([g, -a, -b])
        elif kind == "ite":
            c = self._lit_of(node.args[0])
            t = self._lit_of(node.args[1])
            e = self._lit_of(node.args[2])
            if need & _POS:
                self.add_clause([-g, -c, t])
                self.add_clause([-g, c, e])
            if need & _NEG:
                self.add_clause([g, -c, -t])
                self.add_clause([g, c, -e])
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected gate kind: {kind}")


def _flip(pol: int) -> int:
    if pol == _BOTH:
        return _BOTH
    return _NEG if pol == _POS else _POS


def _child_polarities(node: Term, pol: int):
    kind = node.kind
    if kind in ("and", "or"):
        for child in node.args:
            yield child, pol
    elif kind == "iff":
        yield node.args[0], _BOTH
        yield node.args[1], _BOTH
    elif kind == "ite":
        yield node.args[0], _BOTH
        yield node.args[1], pol
        yield node.args[2], pol
    else:  # pragma: no cover - defensive
        raise TypeError(f"unexpected gate kind: {kind}")
