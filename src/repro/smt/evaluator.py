"""Reference evaluation of terms under a concrete variable assignment.

Used for model evaluation after a SAT answer and as the ground-truth oracle
in the bit-blasting property tests: any term evaluated here must agree with
the value recovered from the CNF pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Union

from .terms import Term

__all__ = ["evaluate"]

Value = Union[bool, int]


def evaluate(term: Term, env: Dict[str, Value]) -> Value:
    """Evaluate ``term`` with variables bound by name in ``env``.

    Booleans evaluate to ``bool``, bit-vectors to ``int`` (masked to their
    width).  Missing variables default to ``False`` / ``0`` — convenient for
    partial models, where unconstrained variables are don't-cares.
    """
    memo: Dict[int, Value] = {}
    stack: List[Term] = [term]
    while stack:
        node = stack[-1]
        if node.tid in memo:
            stack.pop()
            continue
        kind = node.kind
        if kind == "true":
            memo[node.tid] = True
        elif kind == "false":
            memo[node.tid] = False
        elif kind == "boolvar":
            memo[node.tid] = bool(env.get(node.payload, False))
        elif kind == "bvval":
            memo[node.tid] = node.payload
        elif kind == "bvvar":
            mask = (1 << node.width) - 1
            memo[node.tid] = int(env.get(node.payload, 0)) & mask
        else:
            pending = [c for c in node.args if c.tid not in memo]
            if pending:
                stack.extend(pending)
                continue
            vals = [memo[c.tid] for c in node.args]
            memo[node.tid] = _apply(node, vals)
        stack.pop()
    return memo[term.tid]


def _apply(node: Term, vals: list) -> Value:
    kind = node.kind
    if kind == "not":
        return not vals[0]
    if kind == "and":
        return all(vals)
    if kind == "or":
        return any(vals)
    if kind == "iff":
        return vals[0] == vals[1]
    if kind == "ite" or kind == "bvite":
        return vals[1] if vals[0] else vals[2]
    if kind == "eq":
        return vals[0] == vals[1]
    if kind == "ule":
        return vals[0] <= vals[1]
    if kind == "ult":
        return vals[0] < vals[1]
    if kind == "bvadd":
        return (vals[0] + vals[1]) & ((1 << node.width) - 1)
    if kind == "bit":
        return bool((vals[0] >> node.payload) & 1)
    raise TypeError(f"cannot evaluate kind {kind}")  # pragma: no cover
