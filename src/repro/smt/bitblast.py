"""Bit-blasting: rewrite bit-vector terms into pure boolean terms.

The output language contains only boolean leaves — ``boolvar``,
``true``, ``false`` and ``bit(bvvar, i)`` atoms — combined with the
boolean connectives.
Hash-consing in :mod:`repro.smt.terms` keeps shared sub-circuits (carry
chains, comparator prefixes) shared, so the subsequent Tseitin transform
introduces one auxiliary SAT variable per distinct gate.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .terms import Term, and_, bit, iff, ite, not_, or_, xor

__all__ = ["Blaster"]


class Blaster:
    """Stateful bit-blaster with shared memo tables across assertions."""

    def __init__(self) -> None:
        self._bool_memo: Dict[int, Term] = {}
        self._bv_memo: Dict[int, Tuple[Term, ...]] = {}

    def blast(self, term: Term) -> Term:
        """Rewrite a boolean term so no bit-vector operators remain.

        Uses an explicit work stack; network encodings produce term DAGs far
        deeper than Python's default recursion limit.
        """
        memo = self._bool_memo
        stack: List[Term] = [term]
        while stack:
            node = stack[-1]
            if node.tid in memo:
                stack.pop()
                continue
            kind = node.kind
            if kind in ("true", "false", "boolvar"):
                memo[node.tid] = node
                stack.pop()
                continue
            if kind == "bit":
                base = node.args[0]
                if base.kind == "bvvar":
                    memo[node.tid] = node
                    stack.pop()
                else:
                    done, deps = self._bv_ready(base)
                    if not done:
                        stack.extend(deps)
                        continue
                    memo[node.tid] = self.bv_bits(base)[node.payload]
                    stack.pop()
                continue
            if kind in ("eq", "ule", "ult"):
                done_a, deps_a = self._bv_ready(node.args[0])
                done_b, deps_b = self._bv_ready(node.args[1])
                if not (done_a and done_b):
                    stack.extend(deps_a + deps_b)
                    continue
                a = self.bv_bits(node.args[0])
                b = self.bv_bits(node.args[1])
                if kind == "eq":
                    memo[node.tid] = and_(*[iff(x, y) for x, y in zip(a, b)])
                else:
                    memo[node.tid] = _unsigned_cmp(a, b,
                                                   strict=kind == "ult")
                stack.pop()
                continue
            # Pure boolean connective: ensure children are done first.
            pending = [c for c in node.args if c.tid not in memo]
            if pending:
                stack.extend(pending)
                continue
            children = [memo[c.tid] for c in node.args]
            if kind == "not":
                out = not_(children[0])
            elif kind == "and":
                out = and_(*children)
            elif kind == "or":
                out = or_(*children)
            elif kind == "iff":
                out = iff(children[0], children[1])
            elif kind == "ite":
                out = ite(children[0], children[1], children[2])
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected kind in blast: {kind}")
            memo[node.tid] = out
            stack.pop()
        return memo[term.tid]

    def bv_bits(self, term: Term) -> Tuple[Term, ...]:
        """Bits (LSB first) of a bit-vector term, as boolean terms.

        Any boolean conditions nested inside (``bvite`` guards) must already
        be in the boolean memo; :meth:`_bv_ready` arranges that.
        """
        memo = self._bv_memo
        cached = memo.get(term.tid)
        if cached is not None:
            return cached
        kind = term.kind
        if kind == "bvval":
            ctx = term.ctx
            value = term.payload
            bits = tuple(
                ctx.true if (value >> i) & 1 else ctx.false
                for i in range(term.width)
            )
        elif kind == "bvvar":
            bits = tuple(bit(term, i) for i in range(term.width))
        elif kind == "bvite":
            cond = self._bool_memo[term.args[0].tid]
            then = self.bv_bits(term.args[1])
            els = self.bv_bits(term.args[2])
            bits = tuple(ite(cond, t, e) for t, e in zip(then, els))
        elif kind == "bvadd":
            a = self.bv_bits(term.args[0])
            b = self.bv_bits(term.args[1])
            bits = _ripple_add(a, b)
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a bit-vector term: {term.kind}")
        memo[term.tid] = bits
        return bits

    def _bv_ready(self, term: Term) -> Tuple[bool, List[Term]]:
        """Check all boolean guards inside a bit-vector term are blasted.

        Returns ``(ready, missing_guards)``; the caller pushes the missing
        guards onto its work stack and retries.
        """
        missing: List[Term] = []
        stack = [term]
        seen = set()
        while stack:
            node = stack.pop()
            if node.tid in seen or node.tid in self._bv_memo:
                continue
            seen.add(node.tid)
            if node.kind == "bvite":
                guard = node.args[0]
                if guard.tid not in self._bool_memo:
                    missing.append(guard)
                stack.extend(node.args[1:])
            elif node.kind == "bvadd":
                stack.extend(node.args)
        return (not missing, missing)


def _ripple_add(a: Tuple[Term, ...], b: Tuple[Term, ...]) -> Tuple[Term, ...]:
    """Modular ripple-carry addition (carry out of the MSB is discarded)."""
    ctx = a[0].ctx
    carry = ctx.false
    out = []
    for x, y in zip(a, b):
        out.append(xor(xor(x, y), carry))
        carry = or_(and_(x, y), and_(x, carry), and_(y, carry))
    return tuple(out)


def _unsigned_cmp(a: Tuple[Term, ...], b: Tuple[Term, ...],
                  strict: bool) -> Term:
    """``a < b`` (strict) or ``a <= b`` over LSB-first bit lists."""
    ctx = a[0].ctx
    acc = ctx.false if strict else ctx.true
    for x, y in zip(a, b):  # LSB to MSB; MSB comparison dominates.
        acc = or_(and_(not_(x), y), and_(iff(x, y), acc))
    return acc
