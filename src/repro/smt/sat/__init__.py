"""Pure-Python CDCL SAT solver."""

from .solver import SatSolver

__all__ = ["SatSolver"]
