"""Pure-Python CDCL SAT solver.

``SatSolver`` is the production flat-arena solver; ``ReferenceSatSolver``
is the list-based baseline kept for differential testing; ``portfolio``
races seeded ``SatSolver`` configurations across processes.
"""

from .reference import ReferenceSatSolver
from .solver import SatSolver

__all__ = ["SatSolver", "ReferenceSatSolver"]
