"""The list-based CDCL core, kept as a differential baseline.

This is the pre-arena representation of :class:`~.solver.SatSolver`:
clauses are Python lists of internal literals, watch lists hold
``[clause, blocker]`` pair objects, and clause activities live in a side
table keyed by ``id(clause)``.  The arena solver in :mod:`.solver` must
perform the *same operations in the same order* as this class — the
randomized differential suite asserts equal verdicts, models and
conflict/decision/propagation counters between the two.

Both solvers expose the same accessor contract consumed by
:mod:`.preprocess` (``clause_lists`` / ``learnt_lists`` /
``install_clauses``), so one preprocessing implementation serves both
representations.  See docs/SOLVER.md for the contract.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .preprocess import PreprocessConfig, Preprocessor, root_simplify
from .solver import _UNDEF, _luby_sequence, _VarOrder

__all__ = ["ReferenceSatSolver"]


class ReferenceSatSolver:
    """CDCL solver over variables numbered from 1 (DIMACS convention)."""

    def __init__(self) -> None:
        self.num_vars = 0
        self._assign: List[int] = []      # per var: 0 false, 1 true, -1 undef
        self._level: List[int] = []       # per var: decision level
        self._reason: List[Optional[list]] = []
        self._phase: List[int] = []       # saved phase per var (0/1)
        self._activity: List[float] = []
        self._var_inc = 1.0
        # watches[lit]: clauses to inspect when ``lit`` becomes true
        # (i.e. clauses watching ``lit ^ 1``), as [clause, blocker] pairs.
        self._watches: List[List[list]] = [[], []]
        # binary[lit]: (implied, clause) pairs — two-literal clauses get a
        # dedicated implication list and never move watches.
        self._binary: List[List[tuple]] = [[], []]
        self._clauses: List[list] = []    # problem clauses
        self._learnts: List[list] = []
        self._cla_inc = 1.0
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._order = _VarOrder(self._activity)
        self._unsat = False
        self._seen: List[int] = []
        self._clause_act: dict = {}
        # --- preprocessing state (see preprocess.py) -------------------
        self.preprocess_enabled = False
        self.preprocess_config: Optional[PreprocessConfig] = None
        self.inprocess_enabled = True
        self.inprocess_min_units = 32
        self._frozen: Set[int] = set()        # internal var indices
        self._eliminated: Set[int] = set()
        self._elim_clauses: Dict[int, List[list]] = {}
        self._reconstruction: List[tuple] = []
        self._model: Optional[List[int]] = None
        self._pp_clause_mark = 0
        self._last_root_size = 0
        # Statistics (exposed for benchmarks and tests).
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_deleted = 0
        self.pp_runs = 0
        self.pp_units = 0
        self.pp_pure_literals = 0
        self.pp_subsumed = 0
        self.pp_strengthened = 0
        self.pp_eliminated_vars = 0
        self.pp_resolvents = 0
        self.pp_removed_clauses = 0
        self.pp_restored_vars = 0
        self.inprocess_runs = 0
        self.inprocess_removed = 0
        self.progress_hook: Optional[Callable[[Dict[str, int]], None]] = None
        self.progress_interval = 0

    def stats(self) -> Dict[str, int]:
        """Snapshot of the search and preprocessing counters."""
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned": len(self._learnts),
            "learned_deleted": self.learned_deleted,
            "live_clauses": len(self._clauses),
            "eliminated": len(self._eliminated),
            "pp_runs": self.pp_runs,
            "pp_units": self.pp_units,
            "pp_pure_literals": self.pp_pure_literals,
            "pp_subsumed": self.pp_subsumed,
            "pp_strengthened": self.pp_strengthened,
            "pp_eliminated_vars": self.pp_eliminated_vars,
            "pp_resolvents": self.pp_resolvents,
            "pp_removed_clauses": self.pp_removed_clauses,
            "pp_restored_vars": self.pp_restored_vars,
            "inprocess_runs": self.inprocess_runs,
            "inprocess_removed": self.inprocess_removed,
        }

    # ------------------------------------------------------------------
    # Variables and clauses
    # ------------------------------------------------------------------

    def ensure_vars(self, n: int) -> None:
        """Grow the variable pool so DIMACS vars ``1..n`` are usable."""
        while self.num_vars < n:
            self.num_vars += 1
            self._assign.append(_UNDEF)
            self._level.append(0)
            self._reason.append(None)
            self._phase.append(0)
            self._activity.append(0.0)
            self._seen.append(0)
            self._watches.append([])
            self._watches.append([])
            self._binary.append([])
            self._binary.append([])
            self._order.grow(self.num_vars - 1)
            self._order.push(self.num_vars - 1)

    def add_clause(self, dimacs_lits: Iterable[int]) -> bool:
        """Add a clause (DIMACS literals).  Returns False iff now trivially
        unsatisfiable.  May be called between :meth:`solve` calls."""
        if self._unsat:
            return False
        self._cancel_until(0)
        dimacs = list(dimacs_lits)
        if self._eliminated:
            for dl in dimacs:
                internal = abs(dl) - 1
                if internal in self._eliminated:
                    self._restore(internal)
            if self._unsat:
                return False
        lits = []
        seen = set()
        for dl in dimacs:
            var = abs(dl)
            self.ensure_vars(var)
            lit = (var - 1) * 2 + (0 if dl > 0 else 1)
            if lit ^ 1 in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self._lit_value(lit)
            if val == 1 and self._level[lit >> 1] == 0:
                return True  # already satisfied at root
            if val == 0 and self._level[lit >> 1] == 0:
                continue  # falsified at root; drop literal
            seen.add(lit)
            lits.append(lit)
        if not lits:
            self._unsat = True
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], None):
                self._unsat = True
                return False
            if self._propagate() is not None:
                self._unsat = True
                return False
            return True
        self._attach(lits)
        self._clauses.append(lits)
        return True

    def _attach(self, clause: list) -> None:
        if len(clause) == 2:
            a, b = clause
            self._binary[a ^ 1].append((b, clause))
            self._binary[b ^ 1].append((a, clause))
            return
        self._watches[clause[0] ^ 1].append([clause, clause[1]])
        self._watches[clause[1] ^ 1].append([clause, clause[0]])

    # ------------------------------------------------------------------
    # Preprocessing interface (accessor contract — see docs/SOLVER.md)
    # ------------------------------------------------------------------

    def clause_lists(self) -> List[List[int]]:
        """Live problem clauses as lists of internal literals."""
        return self._clauses

    def learnt_lists(self) -> List[Tuple[List[int], Optional[float]]]:
        """Live learnt clauses with their activities (None if unbumped)."""
        act = self._clause_act
        return [(clause, act.get(id(clause))) for clause in self._learnts]

    def root_literals(self) -> List[int]:
        """Root-level trail literals (internal encoding, a copy)."""
        if self._trail_lim:
            return list(self._trail[:self._trail_lim[0]])
        return list(self._trail)

    @property
    def root_conflict(self) -> bool:
        """True once the formula is known unsatisfiable at the root."""
        return self._unsat

    def install_clauses(self, problem: List[List[int]],
                        learnts: List[Tuple[List[int], Optional[float]]]) -> None:
        """Replace the clause database wholesale and rebuild the watches.

        Root-level only.  Clears propagation state (``qhead`` back to 0,
        trail reasons dropped) so the caller's root trail re-propagates
        through the new structures.  Clause activities not carried in
        ``learnts`` are discarded — which also drops any stale entries
        keyed by dead clauses, keeping later DB reductions deterministic.
        """
        self._clauses = problem
        self._learnts = [lits for lits, _ in learnts]
        self._clause_act = {id(lits): activity
                            for lits, activity in learnts
                            if activity is not None}
        size = 2 * self.num_vars + 2
        self._watches = [[] for _ in range(size)]
        self._binary = [[] for _ in range(size)]
        for clause in self._clauses:
            self._attach(clause)
        for clause in self._learnts:
            self._attach(clause)
        self._qhead = 0
        for lit in self._trail:
            self._reason[lit >> 1] = None

    def freeze(self, dimacs_var: int) -> None:
        """Protect a variable from elimination by the preprocessor."""
        self.ensure_vars(dimacs_var)
        var = dimacs_var - 1
        self._frozen.add(var)
        if var in self._eliminated:
            self._restore(var)

    def _restore(self, var: int) -> None:
        worklist = [var]
        while worklist:
            v = worklist.pop()
            if v not in self._eliminated:
                continue
            self._eliminated.discard(v)
            self.pp_restored_vars += 1
            self._order.push(v)
            for clause in self._elim_clauses.pop(v, ()):
                for lit in clause:
                    other = lit >> 1
                    if other in self._eliminated:
                        worklist.append(other)
                self._add_internal(clause)
        if not self._unsat and self._propagate() is not None:
            self._unsat = True

    def _add_internal(self, lits: List[int]) -> None:
        if self._unsat:
            return
        out = []
        for lit in lits:
            val = self._lit_value(lit)
            if val == 1:
                return  # satisfied at root
            if val == 0:
                continue
            out.append(lit)
        if not out:
            self._unsat = True
            return
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self._unsat = True
            return
        self._attach(out)
        self._clauses.append(out)

    def simplify(self, force: bool = False) -> bool:
        """Run the preprocessing pipeline at the root level."""
        if self._unsat:
            return False
        if not self._clauses and not self._learnts:
            return True
        config = self.preprocess_config or PreprocessConfig()
        if not force:
            if len(self._clauses) < config.min_clauses:
                return True
            grown = len(self._clauses) - self._pp_clause_mark
            if (self.pp_runs
                    and grown < max(256, self._pp_clause_mark // 8)):
                return True
        pre = Preprocessor(self, config)
        ok = pre.run()
        self.pp_runs += 1
        self.pp_units += pre.stats["units"]
        self.pp_pure_literals += pre.stats["pure_literals"]
        self.pp_subsumed += pre.stats["subsumed"]
        self.pp_strengthened += pre.stats["strengthened"]
        self.pp_eliminated_vars += pre.stats["eliminated_vars"]
        self.pp_resolvents += pre.stats["resolvents"]
        self.pp_removed_clauses += pre.stats["removed_clauses"]
        self._pp_clause_mark = len(self._clauses)
        self._last_root_size = len(self._trail)
        return ok

    def _extend_model(self) -> List[int]:
        model = list(self._assign)
        extended = set()
        for witness, block in reversed(self._reconstruction):
            var = witness >> 1
            if var not in self._eliminated:
                continue  # restored since; search assigned it directly
            if var in extended:
                continue  # stale entry from before an intervening restore
            extended.add(var)
            value = witness & 1  # witness-false default
            for clause in block:
                satisfied = False
                for lit in clause:
                    if lit == witness:
                        continue
                    if model[lit >> 1] ^ (lit & 1) == 1:
                        satisfied = True
                        break
                if not satisfied:
                    value = 1 - (witness & 1)
                    break
            model[var] = value
        return model

    # ------------------------------------------------------------------
    # Assignment plumbing
    # ------------------------------------------------------------------

    def _lit_value(self, lit: int) -> int:
        v = self._assign[lit >> 1]
        if v == _UNDEF:
            return _UNDEF
        return v ^ (lit & 1)

    def _enqueue(self, lit: int, reason: Optional[list]) -> bool:
        val = self._lit_value(lit)
        if val != _UNDEF:
            return val == 1
        var = lit >> 1
        self._assign[var] = 1 - (lit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        trail = self._trail
        assign = self._assign
        phase = self._phase
        order = self._order
        for i in range(len(trail) - 1, bound - 1, -1):
            lit = trail[i]
            var = lit >> 1
            phase[var] = assign[var]
            assign[var] = _UNDEF
            self._reason[var] = None
            order.push(var)
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(trail)

    # ------------------------------------------------------------------
    # VSIDS order
    # ------------------------------------------------------------------

    def _pick_branch_var(self) -> int:
        order = self._order
        assign = self._assign
        eliminated = self._eliminated
        while order:
            var = order.pop()
            if assign[var] == _UNDEF and var not in eliminated:
                return var
        return _UNDEF

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            inv = 1e-100
            for i in range(self.num_vars):
                self._activity[i] *= inv
            self._var_inc *= inv
        self._order.bump(var)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[list]:
        """Unit propagation; returns a conflicting clause or None."""
        watches = self._watches
        binary = self._binary
        assign = self._assign
        trail = self._trail
        level = self._level
        reason = self._reason
        qhead = self._qhead
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            self.propagations += 1
            level_now = len(self._trail_lim)
            # Binary implications first (cheap, cache-friendly).
            for implied, clause in binary[lit]:
                var = implied >> 1
                value = assign[var]
                if value == _UNDEF:
                    assign[var] = 1 - (implied & 1)
                    level[var] = level_now
                    reason[var] = clause
                    trail.append(implied)
                elif (value ^ (implied & 1)) == 0:
                    self._qhead = len(trail)
                    return clause
            false_lit = lit ^ 1
            watch_list = watches[lit]
            i = 0
            j = 0
            n = len(watch_list)
            while i < n:
                entry = watch_list[i]
                i += 1
                blocker = entry[1]
                vb = assign[blocker >> 1]
                if vb != _UNDEF and (vb ^ (blocker & 1)) == 1:
                    watch_list[j] = entry
                    j += 1
                    continue
                clause = entry[0]
                # Normalize: the false literal goes to slot 1.
                if clause[0] == false_lit:
                    clause[0] = clause[1]
                    clause[1] = false_lit
                first = clause[0]
                v0 = assign[first >> 1]
                if v0 != _UNDEF and (v0 ^ (first & 1)) == 1:
                    entry[1] = first
                    watch_list[j] = entry
                    j += 1
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(clause)):
                    lk = clause[k]
                    vk = assign[lk >> 1]
                    if vk == _UNDEF or (vk ^ (lk & 1)) == 1:
                        clause[1] = lk
                        clause[k] = false_lit
                        entry[1] = first
                        watches[lk ^ 1].append(entry)
                        found = True
                        break
                if found:
                    continue
                entry[1] = first
                watch_list[j] = entry
                j += 1
                if v0 != _UNDEF:  # first is false: conflict
                    while i < n:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    self._qhead = len(trail)
                    return clause
                # Unit: enqueue first.
                var = first >> 1
                assign[var] = 1 - (first & 1)
                level[var] = level_now
                reason[var] = clause
                trail.append(first)
            del watch_list[j:]
        self._qhead = qhead
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _analyze(self, conflict: list) -> tuple:
        """First-UIP learning.  Returns (learnt_clause, backtrack_level)."""
        seen = self._seen
        trail = self._trail
        level = self._level
        cur_level = len(self._trail_lim)
        learnt = [0]  # slot 0 for the asserting literal
        counter = 0
        lit = -1
        index = len(trail) - 1
        reason = conflict
        while True:
            self._bump_clause(reason)
            start = 1 if lit != -1 else 0
            for k in range(start, len(reason)):
                q = reason[k]
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if level[var] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            lit = trail[index]
            index -= 1
            var = lit >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var]
            # Reorder the reason clause so its asserting literal is first.
            if reason[0] != lit:
                for k in range(1, len(reason)):
                    if reason[k] == lit:
                        reason[0], reason[k] = reason[k], reason[0]
                        break
        learnt[0] = lit ^ 1
        for q in learnt[1:]:
            seen[q >> 1] = 1
        minimized = [learnt[0]]
        for q in learnt[1:]:
            if not self._redundant(q):
                minimized.append(q)
        for q in learnt[1:]:
            seen[q >> 1] = 0
        learnt = minimized
        if len(learnt) == 1:
            back_level = 0
        else:
            max_i = 1
            for k in range(2, len(learnt)):
                if level[learnt[k] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = k
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = level[learnt[1] >> 1]
        return learnt, back_level

    def _redundant(self, lit: int) -> bool:
        """Local minimization: drop literals implied by the others."""
        reason = self._reason[lit >> 1]
        if reason is None:
            return False
        seen = self._seen
        level = self._level
        for q in reason:
            if q == (lit ^ 1) or q == lit:
                continue
            var = q >> 1
            if not seen[var] and level[var] > 0:
                return False
        return True

    def _bump_clause(self, clause: list) -> None:
        act = self._clause_act.get(id(clause), 0.0) + self._cla_inc
        self._clause_act[id(clause)] = act
        if act > 1e20:
            inv = 1e-20
            for key in self._clause_act:
                self._clause_act[key] *= inv
            self._cla_inc *= inv

    # ------------------------------------------------------------------
    # Learned clause management
    # ------------------------------------------------------------------

    def _reduce_db(self) -> None:
        learnts = self._learnts
        act = self._clause_act
        locked = set()
        for var in range(self.num_vars):
            r = self._reason[var]
            if r is not None:
                locked.add(id(r))
        learnts.sort(key=lambda c: act.get(id(c), 0.0))
        keep_from = len(learnts) // 2
        removed = []
        kept = []
        for i, clause in enumerate(learnts):
            if i < keep_from and len(clause) > 2 and id(clause) not in locked:
                removed.append(clause)
            else:
                kept.append(clause)
        for clause in removed:
            self._detach(clause)
            act.pop(id(clause), None)
        self._learnts = kept
        self.learned_deleted += len(removed)

    def _detach(self, clause: list) -> None:
        for lit in (clause[0], clause[1]):
            lst = self._watches[lit ^ 1]
            for idx, entry in enumerate(lst):
                if entry[0] is clause:
                    lst[idx] = lst[-1]
                    lst.pop()
                    break

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (),
              conflict_budget: Optional[int] = None) -> Optional[bool]:
        """Search for a model; True/False/None (budget exhausted)."""
        self._model = None
        if self._unsat:
            return False
        self._cancel_until(0)
        assumed = []
        for dl in assumptions:
            var = abs(dl)
            self.ensure_vars(var)
            internal = var - 1
            if internal in self._eliminated:
                self._restore(internal)
            self._frozen.add(internal)
            assumed.append(internal * 2 + (0 if dl > 0 else 1))
        if self._unsat:
            return False
        if self.preprocess_enabled and not self.simplify():
            return False
        if self._propagate() is not None:
            self._unsat = True
            return False

        budget_left = conflict_budget
        restart_index = 0
        restart_limit = 128 * _luby_sequence(restart_index)
        conflicts_here = 0
        max_learnts = max(2000, len(self._clauses) // 2)

        progress_interval = self.progress_interval
        progress_hook = self.progress_hook

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if (progress_interval and progress_hook is not None
                        and self.conflicts % progress_interval == 0):
                    snapshot = self.stats()
                    if budget_left is not None:
                        snapshot["budget_left"] = budget_left
                    progress_hook(snapshot)
                if budget_left is not None:
                    budget_left -= 1
                    if budget_left <= 0:
                        self._cancel_until(0)
                        return None
                if not self._trail_lim:
                    self._unsat = True
                    return False
                if len(self._trail_lim) <= len(assumed):
                    self._cancel_until(0)
                    return False
                learnt, back_level = self._analyze(conflict)
                back_level = max(back_level, 0)
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    self._cancel_until(0)
                    if not self._enqueue(learnt[0], None):
                        self._unsat = True
                        return False
                else:
                    self._attach(learnt)
                    self._learnts.append(learnt)
                    self._clause_act[id(learnt)] = self._cla_inc
                    self._enqueue(learnt[0], learnt)
                self._var_inc /= 0.95
                self._cla_inc /= 0.999
                if len(self._learnts) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                if conflicts_here >= restart_limit:
                    conflicts_here = 0
                    restart_index += 1
                    restart_limit = 128 * _luby_sequence(restart_index)
                    self.restarts += 1
                    self._cancel_until(0)
                    if (self.preprocess_enabled and self.inprocess_enabled
                            and len(self._trail) - self._last_root_size
                            >= self.inprocess_min_units):
                        self.inprocess_runs += 1
                        self.inprocess_removed += root_simplify(self)
                        self._last_root_size = len(self._trail)
                        if self._unsat:
                            return False
                continue
            if len(self._trail_lim) < len(assumed):
                lit = assumed[len(self._trail_lim)]
                val = self._lit_value(lit)
                if val == 1:
                    self._trail_lim.append(len(self._trail))
                    continue
                if val == 0:
                    self._cancel_until(0)
                    return False
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                continue
            var = self._pick_branch_var()
            if var == _UNDEF:
                self._model = self._extend_model()
                return True
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            lit = var * 2 + (1 - self._phase[var])
            self._enqueue(lit, None)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------

    def model_value(self, dimacs_var: int) -> bool:
        """Value of a variable in the most recent satisfying assignment."""
        var = dimacs_var - 1
        if var >= self.num_vars:
            return False
        source = self._model if self._model is not None else self._assign
        val = source[var]
        if val == _UNDEF:
            return False
        return val == 1
