"""CNF preprocessing and inprocessing for the CDCL core.

The encoder's Tseitin output is highly redundant: thousands of
single-use definitional gates, clauses subsumed by stronger siblings,
and variables whose resolution closure is smaller than their occurrence
lists.  Industrial solvers recover most of their speed on such formulas
with SatELite-style simplification (Eén & Biere 2005) before search;
this module implements that layer for :class:`~.solver.SatSolver`.

Techniques, applied to fixpoint under effort bounds:

* **root unit propagation** — units found while simplifying are fixed
  at decision level 0 and propagated through the occurrence lists;
* **subsumption** — a clause C removes every clause D with C ⊆ D,
  located through occurrence lists and rejected early by 64-bit
  variable signatures;
* **self-subsuming resolution** — when C ⊆ D except for one literal
  appearing with opposite polarity, that literal is deleted from D;
* **pure-literal elimination** — a variable occurring with one
  polarity only is removed together with its (satisfiable) clauses;
* **bounded variable elimination** — NiVER-style: a variable is
  resolved away when its non-tautological resolvents do not outnumber
  the clauses they replace.

Correctness contract with the incremental solver:

* **Frozen variables are never eliminated.**  The SMT facade freezes
  every assumption literal — including the batch engine's activation
  literals — via :meth:`SatSolver.freeze`; ``solve()`` additionally
  freezes its assumption variables itself.  Model-readable leaves are
  deliberately *not* frozen: the reconstruction stack (below) answers
  for them, and leaving them free is what lets elimination reach the
  encoder's single-use definitional gates.
* **A reconstruction stack extends models over eliminated variables.**
  Each elimination pushes the removed clauses of the witness polarity;
  after a satisfying search the stack is replayed in reverse, setting
  each eliminated variable so its original clauses hold, which keeps
  :meth:`SatSolver.model_value` exact for every variable.
* **Eliminated variables are restored on reuse.**  If a new clause or
  assumption mentions an eliminated variable, the solver re-adds the
  clauses saved at elimination time (cascading through any eliminated
  variables they mention), so live clauses never reference eliminated
  variables and incremental solving stays sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["PreprocessConfig", "Preprocessor", "root_simplify"]

_UNDEF = -1


class _Unsat(Exception):
    """Internal: the pipeline derived a root-level contradiction."""


@dataclass
class PreprocessConfig:
    """Effort bounds for the preprocessing pipeline.

    The defaults favor predictable polynomial work over maximal
    reduction: occurrence/product caps keep bounded variable
    elimination near-linear, and the round cap bounds the
    subsume/eliminate interleaving.
    """

    # Two rounds reach most of the fixpoint: round one does the bulk,
    # round two mops up what the first round's eliminations exposed
    # (later rounds chase diminishing tails at full pass cost).
    max_rounds: int = 2
    subsumption: bool = True
    self_subsumption: bool = True
    pure_literals: bool = True
    var_elimination: bool = True
    # Below this many clauses the pipeline is skipped outright (unless
    # forced): such formulas solve in less time than a pass costs.
    min_clauses: int = 512
    # Per-polarity occurrence cap and pos*neg resolution cap for BVE.
    # Deliberately tight (NiVER-grade rather than SatELite-grade):
    # on the router encodings the extra reduction from looser caps is
    # a couple of percentage points while the pass cost and end-to-end
    # solve time both worsen measurably.
    elim_occ_limit: int = 4
    elim_product_limit: int = 12
    # Abort an elimination producing a resolvent longer than this.
    elim_resolvent_limit: int = 12
    # Clauses longer than this are not used as subsumers, and
    # occurrence lists longer than this are not scanned.
    subsume_size_limit: int = 24
    subsume_occ_limit: int = 600


def _signature(clause: List[int]) -> int:
    """64-bit variable hash: superset clauses have superset signatures."""
    mask = 0
    for lit in clause:
        mask |= 1 << ((lit >> 1) & 63)
    return mask


class Preprocessor:
    """One run of the simplification pipeline over a solver at root level.

    Operates detached: the solver's problem clauses are copied into a
    working set with occurrence lists, simplified, and the solver's
    watch structures are rebuilt from the survivors.  Learned clauses
    are kept unless they mention an eliminated variable (they are
    consequences, so dropping them is always sound).
    """

    def __init__(self, solver, config: Optional[PreprocessConfig] = None):
        self.solver = solver
        self.config = config or PreprocessConfig()
        self.clauses: List[Optional[List[int]]] = []
        self.occ: List[List[int]] = []
        self.sig: List[int] = []
        self.units: List[int] = []
        # Worklists: clause indices to (re)try as subsumers, and
        # variables whose occurrence lists changed (elimination may
        # newly apply).  Seeded with everything on the first round;
        # later rounds only revisit what the previous round altered.
        self.dirty: List[int] = []
        self.touched: set = set()
        self.stats = {
            "units": 0,
            "pure_literals": 0,
            "subsumed": 0,
            "strengthened": 0,
            "eliminated_vars": 0,
            "resolvents": 0,
            "removed_clauses": 0,
        }

    # ------------------------------------------------------------------

    def run(self) -> bool:
        """Simplify; returns False iff the formula is now known UNSAT."""
        solver = self.solver
        solver._cancel_until(0)
        if solver._propagate() is not None:
            solver._unsat = True
            return False
        try:
            self._collect()
            self._flush_units()
            config = self.config
            self.dirty = list(range(len(self.clauses)))
            self.touched = set(range(solver.num_vars))
            for _ in range(config.max_rounds):
                changed = False
                if config.subsumption:
                    changed |= self._subsumption_pass()
                if config.pure_literals or config.var_elimination:
                    changed |= self._elimination_pass()
                if self.units:
                    changed |= self._flush_units()
                if not changed:
                    break
            self._rebuild()
        except _Unsat:
            solver._unsat = True
            return False
        return True

    # ------------------------------------------------------------------
    # Working-set plumbing
    # ------------------------------------------------------------------

    def _value(self, lit: int) -> int:
        value = self.solver._assign[lit >> 1]
        if value == _UNDEF:
            return _UNDEF
        return value ^ (lit & 1)

    def _collect(self) -> None:
        """Copy live problem clauses, reduced against root assignments."""
        clauses: List[Optional[List[int]]] = []
        for clause in self.solver.clause_lists():
            out = []
            satisfied = False
            for lit in clause:
                value = self._value(lit)
                if value == 1:
                    satisfied = True
                    break
                if value == _UNDEF:
                    out.append(lit)
            if satisfied:
                self.stats["removed_clauses"] += 1
                continue
            if not out:
                raise _Unsat
            if len(out) == 1:
                self.stats["removed_clauses"] += 1
                self._fix(out[0])
                continue
            clauses.append(out)
        self.clauses = clauses
        self.occ = [[] for _ in range(2 * self.solver.num_vars)]
        self.sig = []
        for idx, clause in enumerate(clauses):
            for lit in clause:
                self.occ[lit].append(idx)
            self.sig.append(_signature(clause))

    def _fix(self, lit: int) -> None:
        """Assert ``lit`` at the root; queued for occurrence propagation."""
        value = self._value(lit)
        if value == 1:
            return
        if value == 0:
            raise _Unsat
        self.solver._enqueue(lit, None)
        self.stats["units"] += 1
        self.units.append(lit)

    def _flush_units(self) -> bool:
        """Propagate queued root units through the occurrence lists."""
        changed = False
        while self.units:
            lit = self.units.pop()
            changed = True
            for idx in self.occ[lit]:
                self._remove_clause(idx)
            self.occ[lit] = []
            for idx in list(self.occ[lit ^ 1]):
                self._strengthen(idx, lit ^ 1, tally=False)
            self.occ[lit ^ 1] = []
        return changed

    def _remove_clause(self, idx: int) -> None:
        clause = self.clauses[idx]
        if clause is None:
            return
        self.clauses[idx] = None
        self.stats["removed_clauses"] += 1
        for lit in clause:
            self.touched.add(lit >> 1)

    def _strengthen(self, idx: int, lit: int, tally: bool = True) -> None:
        """Delete ``lit`` from clause ``idx`` (stale entries ignored)."""
        clause = self.clauses[idx]
        if clause is None or lit not in clause:
            return
        if tally:
            self.stats["strengthened"] += 1
        for other in clause:
            self.touched.add(other >> 1)
        out = [other for other in clause if other != lit]
        if len(out) == 1:
            self.clauses[idx] = None
            self.stats["removed_clauses"] += 1
            self._fix(out[0])
            return
        self.clauses[idx] = out
        self.sig[idx] = _signature(out)
        self.dirty.append(idx)

    def _occurrences(self, lit: int) -> List[int]:
        """Compact and return the valid occurrence list of ``lit``."""
        valid = []
        for idx in self.occ[lit]:
            clause = self.clauses[idx]
            if clause is not None and lit in clause:
                valid.append(idx)
        self.occ[lit] = valid
        return valid

    def _add_work(self, clause: List[int]) -> None:
        if len(clause) == 1:
            self._fix(clause[0])
            return
        idx = len(self.clauses)
        self.clauses.append(clause)
        self.sig.append(_signature(clause))
        for lit in clause:
            self.occ[lit].append(idx)
            self.touched.add(lit >> 1)
        self.dirty.append(idx)

    # ------------------------------------------------------------------
    # Subsumption and self-subsuming resolution
    # ------------------------------------------------------------------

    def _subsumption_pass(self) -> bool:
        """Try each dirty clause as a subsumer, shortest first."""
        config = self.config
        changed = False
        queue = sorted(
            {i for i in self.dirty if self.clauses[i] is not None},
            key=lambda i: len(self.clauses[i]),
        )
        del self.dirty[:]
        for idx in queue:
            clause = self.clauses[idx]
            if clause is None or len(clause) > config.subsume_size_limit:
                continue
            changed |= self._backward_subsume(idx)
            if self.units:
                changed |= self._flush_units()
        return changed

    def _backward_subsume(self, idx: int) -> bool:
        """Remove/strengthen every clause weaker than clause ``idx``.

        Candidates are found through the occurrence lists of the
        least-occurring literal ``best``: any subsumed or strengthenable
        clause must contain every literal of this clause except at most
        one flipped literal, hence must contain ``best`` or ``¬best``.
        """
        config = self.config
        clause = self.clauses[idx]
        changed = False
        best = min(clause, key=lambda lit: len(self.occ[lit]))
        for watch, need_strengthen in ((best, False), (best ^ 1, True)):
            if need_strengthen and not config.self_subsumption:
                continue
            if len(self.occ[watch]) > config.subsume_occ_limit:
                continue
            signature = self.sig[idx]
            length = len(clause)
            for other_idx in list(self.occ[watch]):
                if other_idx == idx:
                    continue
                other = self.clauses[other_idx]
                if other is None or len(other) < length:
                    continue
                if signature & ~self.sig[other_idx]:
                    continue
                flip = self._subsumes(clause, other)
                if flip is None:
                    continue
                if flip == -1:
                    self._remove_clause(other_idx)
                    self.stats["subsumed"] += 1
                    changed = True
                elif config.self_subsumption:
                    self._strengthen(other_idx, flip)
                    changed = True
                clause = self.clauses[idx]
                if clause is None:
                    return changed
        return changed

    @staticmethod
    def _subsumes(clause: List[int], other: List[int]) -> Optional[int]:
        """-1 if ``clause`` subsumes ``other``; a literal if ``other``
        can drop it by self-subsuming resolution; None otherwise."""
        members = set(other)
        flip = -1
        for lit in clause:
            if lit in members:
                continue
            if flip == -1 and (lit ^ 1) in members:
                flip = lit ^ 1
                continue
            return None
        return flip

    # ------------------------------------------------------------------
    # Variable elimination (pure literals and bounded resolution)
    # ------------------------------------------------------------------

    def _candidate(self, var: int) -> bool:
        solver = self.solver
        return (
            var not in solver._frozen
            and var not in solver._eliminated
            and solver._assign[var] == _UNDEF
        )

    def _elimination_pass(self) -> bool:
        """Pure-literal and bounded elimination over the touched vars."""
        changed = False
        candidates = []
        # Raw occurrence lengths over-count (stale entries), so a var
        # whose both lists far exceed the elimination cap is hopeless;
        # skipping it avoids the compaction cost of _occurrences.
        hopeless = 2 * self.config.elim_occ_limit
        for var in sorted(self.touched):
            if not self._candidate(var):
                continue
            pos_len = len(self.occ[2 * var])
            neg_len = len(self.occ[2 * var + 1])
            if pos_len > hopeless and neg_len > hopeless:
                continue
            total = pos_len + neg_len
            if total:
                candidates.append((total, var))
        self.touched.clear()
        candidates.sort()
        for _, var in candidates:
            if not self._candidate(var):
                continue
            changed |= self._try_eliminate(var)
            if self.units:
                changed |= self._flush_units()
        return changed

    def _try_eliminate(self, var: int) -> bool:
        config = self.config
        pos = self._occurrences(2 * var)
        neg = self._occurrences(2 * var + 1)
        if not pos or not neg:
            if (pos or neg) and config.pure_literals:
                witness = 2 * var if pos else 2 * var + 1
                self._eliminate(var, witness, pos or neg, [])
                self.stats["pure_literals"] += 1
                return True
            return False
        if not config.var_elimination:
            return False
        if (
            len(pos) > config.elim_occ_limit
            or len(neg) > config.elim_occ_limit
            or len(pos) * len(neg) > config.elim_product_limit
        ):
            return False
        resolvents = []
        budget = len(pos) + len(neg)
        for pos_idx in pos:
            base = [lit for lit in self.clauses[pos_idx]
                    if lit >> 1 != var]
            seen = set(base)
            for neg_idx in neg:
                resolvent = self._resolve(
                    base, seen, self.clauses[neg_idx], var
                )
                if resolvent is None:
                    continue
                if len(resolvent) > config.elim_resolvent_limit:
                    return False
                resolvents.append(resolvent)
                if len(resolvents) > budget:
                    return False
        self._eliminate(var, 2 * var, pos, neg)
        self.stats["eliminated_vars"] += 1
        self.stats["resolvents"] += len(resolvents)
        for resolvent in resolvents:
            self._add_work(resolvent)
        return True

    @staticmethod
    def _resolve(
        base: List[int], seen: set, neg_clause: List[int], var: int
    ) -> Optional[List[int]]:
        """Resolvent on ``var``, or None if it is a tautology.

        ``base``/``seen`` are the positive parent minus ``var``,
        precomputed once per positive clause by the caller.  Clauses
        carry no duplicate literals, so within-side dedup is free.
        """
        out = list(base)
        for lit in neg_clause:
            if lit >> 1 == var:
                continue
            if lit ^ 1 in seen:
                return None
            if lit not in seen:
                out.append(lit)
        return out

    def _eliminate(
        self,
        var: int,
        witness: int,
        witness_idxs: List[int],
        other_idxs: List[int],
    ) -> None:
        """Remove ``var``'s clauses; record restore + reconstruction data.

        The reconstruction stack gets the clauses containing the witness
        literal: replayed in reverse, "make the witness true iff one of
        its clauses is otherwise unsatisfied" re-derives a value for the
        variable consistent with every clause removed here (the clauses
        of the opposite polarity are covered by the resolvents, which
        stay in the formula — the NiVER soundness argument).
        """
        solver = self.solver
        block = []
        stored = []
        for idx in witness_idxs:
            clause = self.clauses[idx]
            block.append(clause)
            stored.append(clause)
            self._remove_clause(idx)
        for idx in other_idxs:
            stored.append(self.clauses[idx])
            self._remove_clause(idx)
        solver._reconstruction.append((witness, block))
        solver._elim_clauses[var] = stored
        solver._eliminated.add(var)

    # ------------------------------------------------------------------
    # Rebuild the solver around the simplified clause set
    # ------------------------------------------------------------------

    def _rebuild(self) -> None:
        """Reinstall the surviving clause set through the accessor layer.

        Learnt clauses mentioning an eliminated variable are dropped
        (they are consequences, so that is always sound); drops are
        tallied into ``learned_deleted`` so the counter stays the
        monotone "learnt clauses ever discarded" total that portfolio
        aggregation sums across workers.
        """
        solver = self.solver
        problem = [c for c in self.clauses if c is not None]
        eliminated = solver._eliminated
        assign = solver._assign
        learnts = []
        deleted = 0
        for clause, activity in solver.learnt_lists():
            dropped = False
            satisfied = False
            out = []
            for lit in clause:
                if lit >> 1 in eliminated:
                    dropped = True
                    break
                value = assign[lit >> 1]
                if value == _UNDEF:
                    out.append(lit)
                elif value ^ (lit & 1) == 1:
                    satisfied = True
                    break
            if dropped or satisfied:
                deleted += 1
                continue
            if not out:
                solver.learned_deleted += deleted
                raise _Unsat
            if len(out) == 1:
                deleted += 1
                self._fix(out[0])
                continue
            learnts.append((out, activity))
        solver.learned_deleted += deleted
        solver.install_clauses(problem, learnts)


def root_simplify(solver) -> int:
    """Light inprocessing: clean the clause database against root facts.

    Removes clauses satisfied at decision level 0 and deletes falsified
    literals, reinstalling the survivors through the solver's accessor
    layer.  Called by the solver between restarts once enough new root
    units have accumulated; must run at decision level 0.  Returns the
    number of clauses removed and sets ``solver._unsat`` on a root
    contradiction.  Learnt clauses discarded here count toward
    ``learned_deleted`` (the monotone "ever discarded" total).
    """
    assign = solver._assign
    removed = 0
    deleted_learnts = 0

    def reduce_pairs(pairs, learnt: bool):
        nonlocal removed, deleted_learnts
        kept = []
        for clause, activity in pairs:
            out = []
            satisfied = False
            for lit in clause:
                value = assign[lit >> 1]
                if value == _UNDEF:
                    out.append(lit)
                elif value ^ (lit & 1) == 1:
                    satisfied = True
                    break
            if satisfied:
                removed += 1
                if learnt:
                    deleted_learnts += 1
                continue
            if not out:
                solver._unsat = True
                return kept
            if len(out) == 1:
                removed += 1
                if learnt:
                    deleted_learnts += 1
                if not solver._enqueue(out[0], None):
                    solver._unsat = True
                    return kept
                continue
            kept.append((out, activity))
        return kept

    problem = reduce_pairs(((c, None) for c in solver.clause_lists()),
                           learnt=False)
    learnts = []
    if not solver._unsat:
        learnts = reduce_pairs(solver.learnt_lists(), learnt=True)
    solver.learned_deleted += deleted_learnts
    if solver._unsat:
        return removed
    solver.install_clauses([lits for lits, _ in problem], learnts)
    return removed
