"""A CDCL SAT solver in pure Python over a flat clause arena.

Implements the standard modern architecture: two-watched-literal propagation,
first-UIP conflict analysis with recursive clause minimization, VSIDS decision
ordering with phase saving, Luby restarts and activity-driven deletion of
learned clauses.  The design follows MiniSat; the storage layout follows the
flat-buffer style of modern C solvers, adapted to CPython:

* **Clause arena** — one growable flat int buffer (a Python list of
  int32-range ints; :meth:`SatSolver.arena_view` exports an ``array('i')``
  int32 memoryview of it) holding every clause as
  ``[end, lit0, lit1, ...]``.  A clause is identified by the offset of its
  *first literal* (its *ref*), so the hot path reads ``arena[ref]`` /
  ``arena[ref + 1]`` with no header skip; the header word at ``ref - 1``
  holds the clause's *end offset* (one add cheaper than a size on every
  scan) and is only consulted off the blocker fast path.  Offset 0 holds a
  sentinel so no live ref is 0, and refs double as reason markers
  (``-1`` = no reason).
* **Watcher lists** — per literal, *parallel* int lists of clause refs and
  cached blocker literals.  The dominant skip path (blocker already true)
  touches only the blocker list; binary clauses use dedicated parallel
  implication lists of (implied_lit, clause_ref) and never move watches.
* **Reasons** — a flat per-variable list of clause refs.

Deleted learnt clauses leave gaps in the arena; a compacting GC remaps all
live refs *in place* (watch order preserved) once the waste crosses a
threshold, so search behavior is unaffected by collection.

The search is op-for-op identical to the list-based baseline kept in
:mod:`.reference` — same decisions, conflicts, propagations, and models —
which the randomized differential suite asserts.  Diversification knobs
(``seed``, ``restart_base``, ``var_decay``, ``phase_init``,
``random_decision_freq``) support portfolio solving; their defaults
reproduce the baseline bit-identically.

The solver answers ``True`` (satisfiable), ``False`` (unsatisfiable) or
``None`` (conflict budget exhausted).  It supports solving under assumptions
and incremental clause addition between calls.

With ``preprocess_enabled`` (off by default at this layer; the SMT facade
turns it on), :meth:`solve` first runs the SatELite-style simplification
pipeline in :mod:`.preprocess` under the frozen-variable protocol; the
preprocessor reads and replaces the clause database exclusively through
the accessor contract (:meth:`clause_lists` / :meth:`learnt_lists` /
:meth:`install_clauses`), never through the raw arena.
"""

from __future__ import annotations

import random
from array import array
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .preprocess import PreprocessConfig, Preprocessor, root_simplify

__all__ = ["SatSolver"]

_UNDEF = -1
_NO_REASON = -1

# Compact the arena once this many ints are dead *and* they exceed half
# the arena (amortizes the remap over real fragmentation only).
_GC_MIN_WASTE = 16384


class _VarOrder:
    """Indexed binary max-heap over variable activities.

    Unlike ``heapq`` with stale entries, each variable appears at most
    once and activity bumps adjust its position in place — essential when
    backtracking re-inserts thousands of variables per conflict.
    """

    __slots__ = ("heap", "position", "activity")

    def __init__(self, activity: List[float]) -> None:
        self.heap: List[int] = []
        self.position: List[int] = []
        self.activity = activity

    def grow(self, var: int) -> None:
        while len(self.position) <= var:
            self.position.append(-1)

    def push(self, var: int) -> None:
        if self.position[var] != -1:
            return
        self.heap.append(var)
        self.position[var] = len(self.heap) - 1
        self._sift_up(len(self.heap) - 1)

    def pop(self) -> int:
        heap = self.heap
        top = heap[0]
        last = heap.pop()
        self.position[top] = -1
        if heap:
            heap[0] = last
            self.position[last] = 0
            self._sift_down(0)
        return top

    def bump(self, var: int) -> None:
        pos = self.position[var]
        if pos != -1:
            self._sift_up(pos)

    def __bool__(self) -> bool:
        return bool(self.heap)

    def _sift_up(self, pos: int) -> None:
        heap = self.heap
        position = self.position
        act = self.activity
        var = heap[pos]
        key = act[var]
        while pos > 0:
            parent = (pos - 1) >> 1
            pvar = heap[parent]
            if act[pvar] >= key:
                break
            heap[pos] = pvar
            position[pvar] = pos
            pos = parent
        heap[pos] = var
        position[var] = pos

    def _sift_down(self, pos: int) -> None:
        heap = self.heap
        position = self.position
        act = self.activity
        size = len(heap)
        var = heap[pos]
        key = act[var]
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and act[heap[right]] > act[heap[child]]:
                child = right
            cvar = heap[child]
            if act[cvar] <= key:
                break
            heap[pos] = cvar
            position[cvar] = pos
            pos = child
        heap[pos] = var
        position[var] = pos


def _luby_sequence(x: int) -> int:
    """The x-th element (0-based) of the Luby restart sequence.

    Yields 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...; the classic MiniSat recurrence.
    """
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x = x % size
    return 1 << seq


class SatSolver:
    """CDCL solver over variables numbered from 1 (DIMACS convention).

    Args:
        seed: RNG seed for the diversification knobs below; ``None``
            (the default) disables all randomness.
        restart_base: Luby restart unit in conflicts.
        var_decay: VSIDS activity decay factor per conflict.
        phase_init: initial saved phase per variable — ``"false"``,
            ``"true"``, or ``"random"`` (requires ``seed``).
        random_decision_freq: probability of replacing a VSIDS pick
            with a random unassigned variable (requires ``seed``).

    The defaults reproduce :class:`~.reference.ReferenceSatSolver`
    bit-identically; non-default values are the portfolio's
    diversification surface (see :mod:`.portfolio`).
    """

    def __init__(self, seed: Optional[int] = None, restart_base: int = 128,
                 var_decay: float = 0.95, phase_init: str = "false",
                 random_decision_freq: float = 0.0) -> None:
        if phase_init not in ("false", "true", "random"):
            raise ValueError(f"unknown phase_init {phase_init!r}")
        if phase_init == "random" and seed is None:
            raise ValueError("phase_init='random' requires a seed")
        if random_decision_freq and seed is None:
            raise ValueError("random_decision_freq requires a seed")
        self.seed = seed
        self.restart_base = restart_base
        self.var_decay = var_decay
        self.phase_init = phase_init
        self.random_decision_freq = random_decision_freq
        self._decision_rng = random.Random(seed) if seed is not None else None
        self._phase_rng = (random.Random((seed << 1) ^ 0x9E3779B9)
                           if phase_init == "random" else None)
        self._default_phase = 1 if phase_init == "true" else 0

        self.num_vars = 0
        self._assign: List[int] = []      # per var: 0 false, 1 true, -1 undef
        self._level: List[int] = []       # per var: decision level
        self._reason: List[int] = []      # per var: clause ref or -1
        self._phase: List[int] = []       # saved phase per var (0/1)
        self._activity: List[float] = []
        self._var_inc = 1.0
        # Flat clause arena; see the module docstring for the layout.
        self._arena: List[int] = [0]
        self._wasted = 0                  # dead ints awaiting compaction
        self._clause_refs: List[int] = []  # problem clause refs
        self._learnt_refs: List[int] = []  # learnt clause refs
        # Parallel watcher arrays, indexed by the literal that just became
        # true: _watch_refs[lit][k] is a clause watching ``lit ^ 1`` and
        # _watch_blk[lit][k] its cached blocker.
        self._watch_refs: List[List[int]] = [[], []]
        self._watch_blk: List[List[int]] = [[], []]
        # Parallel binary implication arrays: _bin_lits[lit][k] is implied
        # when ``lit`` becomes true; _bin_refs[lit][k] the clause ref.
        self._bin_lits: List[List[int]] = [[], []]
        self._bin_refs: List[List[int]] = [[], []]
        self._cla_inc = 1.0
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._order = _VarOrder(self._activity)
        self._unsat = False
        self._seen: List[int] = []
        self._clause_act: Dict[int, float] = {}   # ref -> activity
        # --- preprocessing state (see preprocess.py) -------------------
        # Off by default so raw SatSolver users (and white-box tests) get
        # untouched CDCL; the SMT facade enables it per EncoderOptions.
        self.preprocess_enabled = False
        self.preprocess_config: Optional[PreprocessConfig] = None
        # Light root-level clause cleaning between restarts.
        self.inprocess_enabled = True
        self.inprocess_min_units = 32
        self._frozen: Set[int] = set()        # internal var indices
        self._eliminated: Set[int] = set()
        # Per eliminated var: its original clauses, for restore-on-reuse.
        self._elim_clauses: Dict[int, List[list]] = {}
        # Blocks of (witness_lit, clauses) replayed in reverse to extend
        # a model over eliminated variables.
        self._reconstruction: List[tuple] = []
        # Extended model snapshot from the last SAT answer (per var 0/1),
        # or None when the last answer was not SAT.
        self._model: Optional[List[int]] = None
        self._pp_clause_mark = 0              # clause count at last run
        self._last_root_size = 0              # root trail size at last run
        # Statistics (exposed for benchmarks and tests).
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_deleted = 0
        self.pp_runs = 0
        self.pp_units = 0
        self.pp_pure_literals = 0
        self.pp_subsumed = 0
        self.pp_strengthened = 0
        self.pp_eliminated_vars = 0
        self.pp_resolvents = 0
        self.pp_removed_clauses = 0
        self.pp_restored_vars = 0
        self.inprocess_runs = 0
        self.inprocess_removed = 0
        # Progress sampling: every ``progress_interval`` conflicts the
        # search calls ``progress_hook(stats_snapshot)``.  This is how
        # the telemetry layer watches long solves from the outside
        # (conflict-budget burn-down for UNKNOWN diagnostics) without
        # touching the inner loop when disabled.
        self.progress_hook: Optional[Callable[[Dict[str, int]], None]] = None
        self.progress_interval = 0

    def stats(self) -> Dict[str, int]:
        """Snapshot of the search and preprocessing counters.

        All monotone except ``learned`` (live learned-clause count),
        ``live_clauses`` (live problem-clause count) and ``eliminated``
        (currently eliminated variables, which shrinks on restore).
        ``learned_deleted`` counts every learnt clause ever discarded —
        by DB reduction, preprocessing, or root simplification — so
        portfolio aggregation can sum it across workers.
        """
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned": len(self._learnt_refs),
            "learned_deleted": self.learned_deleted,
            "live_clauses": len(self._clause_refs),
            "eliminated": len(self._eliminated),
            "pp_runs": self.pp_runs,
            "pp_units": self.pp_units,
            "pp_pure_literals": self.pp_pure_literals,
            "pp_subsumed": self.pp_subsumed,
            "pp_strengthened": self.pp_strengthened,
            "pp_eliminated_vars": self.pp_eliminated_vars,
            "pp_resolvents": self.pp_resolvents,
            "pp_removed_clauses": self.pp_removed_clauses,
            "pp_restored_vars": self.pp_restored_vars,
            "inprocess_runs": self.inprocess_runs,
            "inprocess_removed": self.inprocess_removed,
        }

    # ------------------------------------------------------------------
    # Variables and clauses
    # ------------------------------------------------------------------

    def ensure_vars(self, n: int) -> None:
        """Grow the variable pool so DIMACS vars ``1..n`` are usable."""
        while self.num_vars < n:
            self.num_vars += 1
            self._assign.append(_UNDEF)
            self._level.append(0)
            self._reason.append(_NO_REASON)
            if self._phase_rng is not None:
                self._phase.append(self._phase_rng.getrandbits(1))
            else:
                self._phase.append(self._default_phase)
            self._activity.append(0.0)
            self._seen.append(0)
            self._watch_refs.append([])
            self._watch_refs.append([])
            self._watch_blk.append([])
            self._watch_blk.append([])
            self._bin_lits.append([])
            self._bin_lits.append([])
            self._bin_refs.append([])
            self._bin_refs.append([])
            self._order.grow(self.num_vars - 1)
            self._order.push(self.num_vars - 1)

    def _alloc(self, lits: Sequence[int]) -> int:
        """Append a clause to the arena; returns its ref (lit0 offset)."""
        arena = self._arena
        ref = len(arena) + 1
        arena.append(ref + len(lits))
        arena.extend(lits)
        return ref

    def clause_lits(self, ref: int) -> List[int]:
        """The literals of the clause at ``ref`` (a copy)."""
        arena = self._arena
        return list(arena[ref:arena[ref - 1]])

    def arena_view(self) -> memoryview:
        """Int32 memoryview snapshot of the clause arena (introspection).

        The live arena is a flat Python list — on CPython, list indexing
        returns shared cached ints while ``array('i')`` boxes a fresh int
        per read, a ~20% BCP tax measured on random 3-SAT — so the int32
        typed view is materialized on demand rather than kept live.
        """
        return memoryview(array("i", self._arena))

    def add_clause(self, dimacs_lits: Iterable[int]) -> bool:
        """Add a clause (DIMACS literals).  Returns False iff now trivially
        unsatisfiable.  May be called between :meth:`solve` calls."""
        if self._unsat:
            return False
        self._cancel_until(0)
        dimacs = list(dimacs_lits)
        if self._eliminated:
            # Restore eliminated variables *before* evaluating literals
            # against the root assignment: restoring mid-loop could
            # attach this clause while earlier literals were judged
            # against a stale root state.
            for dl in dimacs:
                internal = abs(dl) - 1
                if internal in self._eliminated:
                    self._restore(internal)
            if self._unsat:
                return False
        lits = []
        seen = set()
        for dl in dimacs:
            var = abs(dl)
            self.ensure_vars(var)
            lit = (var - 1) * 2 + (0 if dl > 0 else 1)
            if lit ^ 1 in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self._lit_value(lit)
            if val == 1 and self._level[lit >> 1] == 0:
                return True  # already satisfied at root
            if val == 0 and self._level[lit >> 1] == 0:
                continue  # falsified at root; drop literal
            seen.add(lit)
            lits.append(lit)
        if not lits:
            self._unsat = True
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], None):
                self._unsat = True
                return False
            if self._propagate() is not None:
                self._unsat = True
                return False
            return True
        ref = self._alloc(lits)
        self._attach(ref)
        self._clause_refs.append(ref)
        return True

    def _attach(self, ref: int) -> None:
        arena = self._arena
        a = arena[ref]
        b = arena[ref + 1]
        if arena[ref - 1] - ref == 2:
            self._bin_lits[a ^ 1].append(b)
            self._bin_refs[a ^ 1].append(ref)
            self._bin_lits[b ^ 1].append(a)
            self._bin_refs[b ^ 1].append(ref)
            return
        self._watch_refs[a ^ 1].append(ref)
        self._watch_blk[a ^ 1].append(b)
        self._watch_refs[b ^ 1].append(ref)
        self._watch_blk[b ^ 1].append(a)

    # ------------------------------------------------------------------
    # Preprocessing interface (accessor contract — see docs/SOLVER.md)
    # ------------------------------------------------------------------

    def clause_lists(self) -> List[List[int]]:
        """Live problem clauses as lists of internal literals."""
        return [self.clause_lits(ref) for ref in self._clause_refs]

    def learnt_lists(self) -> List[Tuple[List[int], Optional[float]]]:
        """Live learnt clauses with their activities (None if unbumped)."""
        act = self._clause_act
        return [(self.clause_lits(ref), act.get(ref))
                for ref in self._learnt_refs]

    def root_literals(self) -> List[int]:
        """Root-level trail literals (internal encoding, a copy).

        These are facts not represented in :meth:`clause_lists` — a
        caller exporting the clause database (the portfolio path) must
        ship them as unit clauses.
        """
        if self._trail_lim:
            return list(self._trail[:self._trail_lim[0]])
        return list(self._trail)

    @property
    def root_conflict(self) -> bool:
        """True once the formula is known unsatisfiable at the root."""
        return self._unsat

    def install_clauses(self, problem: List[List[int]],
                        learnts: List[Tuple[List[int], Optional[float]]]) -> None:
        """Replace the clause database wholesale and rebuild the watches.

        Root-level only.  The arena is rebuilt from scratch (a full
        compaction), watches and binary lists are reattached, and
        propagation state is cleared (``qhead`` back to 0, trail reasons
        dropped) so the caller's root trail re-propagates through the
        new structures.  Clause activities not carried in ``learnts``
        are discarded.
        """
        self._arena = [0]
        self._wasted = 0
        self._clause_refs = []
        self._learnt_refs = []
        self._clause_act = {}
        size = 2 * self.num_vars + 2
        self._watch_refs = [[] for _ in range(size)]
        self._watch_blk = [[] for _ in range(size)]
        self._bin_lits = [[] for _ in range(size)]
        self._bin_refs = [[] for _ in range(size)]
        for lits in problem:
            ref = self._alloc(lits)
            self._attach(ref)
            self._clause_refs.append(ref)
        for lits, activity in learnts:
            ref = self._alloc(lits)
            self._attach(ref)
            self._learnt_refs.append(ref)
            if activity is not None:
                self._clause_act[ref] = activity
        self._qhead = 0
        reason = self._reason
        for lit in self._trail:
            reason[lit >> 1] = _NO_REASON

    def freeze(self, dimacs_var: int) -> None:
        """Protect a variable from elimination by the preprocessor.

        Must be called for every variable whose value may be read via
        :meth:`model_value` while other clauses mentioning it are still
        being added, and for assumption/activation literals (``solve``
        freezes its own assumptions as a safety net).  Freezing an
        already-eliminated variable restores it.
        """
        self.ensure_vars(dimacs_var)
        var = dimacs_var - 1
        self._frozen.add(var)
        if var in self._eliminated:
            self._restore(var)

    def _restore(self, var: int) -> None:
        """Un-eliminate ``var``: re-add the clauses removed when it was
        resolved away, cascading through eliminated variables they
        mention.  Root-level only; may set ``_unsat``."""
        worklist = [var]
        while worklist:
            v = worklist.pop()
            if v not in self._eliminated:
                continue
            self._eliminated.discard(v)
            self.pp_restored_vars += 1
            self._order.push(v)
            for clause in self._elim_clauses.pop(v, ()):
                for lit in clause:
                    other = lit >> 1
                    if other in self._eliminated:
                        worklist.append(other)
                self._add_internal(clause)
        if not self._unsat and self._propagate() is not None:
            self._unsat = True

    def _add_internal(self, lits: List[int]) -> None:
        """Root-level add of a clause in internal literals (restore path).

        Mirrors :meth:`add_clause` minus the DIMACS conversion and
        tautology/dedup work (stored clauses are already clean)."""
        if self._unsat:
            return
        out = []
        for lit in lits:
            val = self._lit_value(lit)
            if val == 1:
                return  # satisfied at root
            if val == 0:
                continue
            out.append(lit)
        if not out:
            self._unsat = True
            return
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self._unsat = True
            return
        ref = self._alloc(out)
        self._attach(ref)
        self._clause_refs.append(ref)

    def simplify(self, force: bool = False) -> bool:
        """Run the preprocessing pipeline at the root level.

        Gated so incremental solving doesn't pay the (linear-ish) pass
        on every call: runs on the first invocation and again once the
        clause database has grown enough since the last run.  ``force``
        bypasses the gate.  Returns False iff the formula is now known
        unsatisfiable.
        """
        if self._unsat:
            return False
        if not self._clause_refs and not self._learnt_refs:
            return True
        config = self.preprocess_config or PreprocessConfig()
        if not force:
            if len(self._clause_refs) < config.min_clauses:
                return True
            grown = len(self._clause_refs) - self._pp_clause_mark
            if (self.pp_runs
                    and grown < max(256, self._pp_clause_mark // 8)):
                return True
        pre = Preprocessor(self, config)
        ok = pre.run()
        self.pp_runs += 1
        self.pp_units += pre.stats["units"]
        self.pp_pure_literals += pre.stats["pure_literals"]
        self.pp_subsumed += pre.stats["subsumed"]
        self.pp_strengthened += pre.stats["strengthened"]
        self.pp_eliminated_vars += pre.stats["eliminated_vars"]
        self.pp_resolvents += pre.stats["resolvents"]
        self.pp_removed_clauses += pre.stats["removed_clauses"]
        self._pp_clause_mark = len(self._clause_refs)
        self._last_root_size = len(self._trail)
        return ok

    def _extend_model(self) -> List[int]:
        """Snapshot the assignment, extended over eliminated variables."""
        return self._reconstruct_model(list(self._assign))

    def extend_external_model(self, values: Sequence[bool]) -> List[bool]:
        """Extend an externally-produced satisfying assignment.

        ``values`` (indexed by internal var; short lists are padded
        with False) must satisfy this solver's *current* clause
        database — e.g. a portfolio worker's model over the CNF this
        solver exported after preprocessing.  Replays the
        reconstruction stack so the variables this solver eliminated
        get the same witness values a local solve would have produced.
        """
        model = [1 if v else 0 for v in values]
        if len(model) < self.num_vars:
            model.extend([0] * (self.num_vars - len(model)))
        return [v == 1 for v in self._reconstruct_model(model)]

    def _reconstruct_model(self, model: List[int]) -> List[int]:
        """Extend ``model`` in place over eliminated variables.

        Replays the reconstruction stack in reverse: each block's
        witness defaults to false and flips to true iff one of the
        clauses removed at its elimination is otherwise unsatisfied —
        exactly the NiVER model-extension argument.  Non-witness
        literals in a block's clauses are guaranteed final when the
        block is processed (their own eliminations, if any, are deeper
        in the stack).

        ``_restore`` does not scrub a variable's old entries off the
        stack, so a restore-then-re-eliminate cycle leaves stale older
        entries below the live one; only the newest entry per variable
        (the first met in the reversed walk) reflects the clause set at
        its latest elimination, so later duplicates are skipped.
        """
        extended = set()
        for witness, block in reversed(self._reconstruction):
            var = witness >> 1
            if var not in self._eliminated:
                continue  # restored since; search assigned it directly
            if var in extended:
                continue  # stale entry from before an intervening restore
            extended.add(var)
            value = witness & 1  # witness-false default
            for clause in block:
                satisfied = False
                for lit in clause:
                    if lit == witness:
                        continue
                    if model[lit >> 1] ^ (lit & 1) == 1:
                        satisfied = True
                        break
                if not satisfied:
                    value = 1 - (witness & 1)
                    break
            model[var] = value
        return model

    # ------------------------------------------------------------------
    # Assignment plumbing
    # ------------------------------------------------------------------

    def _lit_value(self, lit: int) -> int:
        v = self._assign[lit >> 1]
        if v == _UNDEF:
            return _UNDEF
        return v ^ (lit & 1)

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        val = self._lit_value(lit)
        if val != _UNDEF:
            return val == 1
        var = lit >> 1
        self._assign[var] = 1 - (lit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = _NO_REASON if reason is None else reason
        self._trail.append(lit)
        return True

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        trail = self._trail
        assign = self._assign
        phase = self._phase
        order = self._order
        for i in range(len(trail) - 1, bound - 1, -1):
            lit = trail[i]
            var = lit >> 1
            phase[var] = assign[var]
            assign[var] = _UNDEF
            self._reason[var] = _NO_REASON
            order.push(var)
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(trail)

    # ------------------------------------------------------------------
    # VSIDS order
    # ------------------------------------------------------------------

    def _pick_branch_var(self) -> int:
        rng = self._decision_rng
        if (rng is not None and self.random_decision_freq
                and self._order.heap
                and rng.random() < self.random_decision_freq):
            # Random pick from the heap (lazy deletion keeps assigned
            # vars in it; fall through to VSIDS if we hit one).
            var = self._order.heap[rng.randrange(len(self._order.heap))]
            if self._assign[var] == _UNDEF and var not in self._eliminated:
                return var
        order = self._order
        assign = self._assign
        eliminated = self._eliminated
        while order:
            var = order.pop()
            if assign[var] == _UNDEF and var not in eliminated:
                return var
        return _UNDEF

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            inv = 1e-100
            for i in range(self.num_vars):
                self._activity[i] *= inv
            self._var_inc *= inv
        self._order.bump(var)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause ref or None.

        Binary clauses propagate through dedicated implication arrays;
        longer clauses use two watched literals with cached blockers.
        The blocker-satisfied skip path — the vast majority of watch
        visits — reads only the blocker array and writes nothing unless
        a prior entry in this list already moved away.
        """
        watch_refs = self._watch_refs
        watch_blk = self._watch_blk
        bin_lits = self._bin_lits
        bin_refs = self._bin_refs
        assign = self._assign
        trail = self._trail
        level = self._level
        reason = self._reason
        arena = self._arena
        qhead = self._qhead
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            self.propagations += 1
            level_now = len(self._trail_lim)
            # Binary implications first (cheap, cache-friendly).
            blits = bin_lits[lit]
            if blits:
                brefs = bin_refs[lit]
                for p, implied in enumerate(blits):
                    var = implied >> 1
                    value = assign[var]
                    if value == _UNDEF:
                        assign[var] = 1 - (implied & 1)
                        level[var] = level_now
                        reason[var] = brefs[p]
                        trail.append(implied)
                    elif (value ^ (implied & 1)) == 0:
                        self._qhead = len(trail)
                        return brefs[p]
            # ``lit`` became true, so the in-clause literal ``lit ^ 1``
            # became false; clauses watching it live in watches[lit].
            false_lit = lit ^ 1
            refs = watch_refs[lit]
            blks = watch_blk[lit]
            i = 0
            j = 0
            n = len(refs)
            while i < n:
                blocker = blks[i]
                vb = assign[blocker >> 1]
                if vb != _UNDEF and (vb ^ (blocker & 1)) == 1:
                    if j != i:
                        refs[j] = refs[i]
                        blks[j] = blocker
                    i += 1
                    j += 1
                    continue
                ref = refs[i]
                i += 1
                # Normalize: the false literal goes to slot 1.
                first = arena[ref]
                if first == false_lit:
                    first = arena[ref + 1]
                    arena[ref] = first
                    arena[ref + 1] = false_lit
                v0 = assign[first >> 1]
                if v0 != _UNDEF and (v0 ^ (first & 1)) == 1:
                    refs[j] = ref
                    blks[j] = first
                    j += 1
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(ref + 2, arena[ref - 1]):
                    lk = arena[k]
                    vk = assign[lk >> 1]
                    if vk == _UNDEF or (vk ^ (lk & 1)) == 1:
                        arena[ref + 1] = lk
                        arena[k] = false_lit
                        watch_refs[lk ^ 1].append(ref)
                        watch_blk[lk ^ 1].append(first)
                        found = True
                        break
                if found:
                    continue
                refs[j] = ref
                blks[j] = first
                j += 1
                if v0 != _UNDEF:  # first is false: conflict
                    refs[j:] = refs[i:n]
                    blks[j:] = blks[i:n]
                    self._qhead = len(trail)
                    return ref
                # Unit: enqueue first.
                var = first >> 1
                assign[var] = 1 - (first & 1)
                level[var] = level_now
                reason[var] = ref
                trail.append(first)
            if j != n:
                del refs[j:]
                del blks[j:]
        self._qhead = qhead
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _analyze(self, conflict: int) -> tuple:
        """First-UIP learning.  Returns (learnt_clause, backtrack_level)."""
        seen = self._seen
        trail = self._trail
        level = self._level
        arena = self._arena
        cur_level = len(self._trail_lim)
        learnt = [0]  # slot 0 for the asserting literal
        counter = 0
        lit = -1
        index = len(trail) - 1
        reason = conflict
        while True:
            self._bump_clause(reason)
            start = 1 if lit != -1 else 0
            for k in range(reason + start, arena[reason - 1]):
                q = arena[k]
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if level[var] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            lit = trail[index]
            index -= 1
            var = lit >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var]
            # Reorder the reason clause so its asserting literal is first.
            if arena[reason] != lit:
                for k in range(reason + 1, arena[reason - 1]):
                    if arena[k] == lit:
                        arena[k] = arena[reason]
                        arena[reason] = lit
                        break
        learnt[0] = lit ^ 1
        # Mark remaining literals for minimization bookkeeping.
        for q in learnt[1:]:
            seen[q >> 1] = 1
        minimized = [learnt[0]]
        for q in learnt[1:]:
            if not self._redundant(q):
                minimized.append(q)
        for q in learnt[1:]:
            seen[q >> 1] = 0
        learnt = minimized
        if len(learnt) == 1:
            back_level = 0
        else:
            # Find the second-highest decision level in the clause.
            max_i = 1
            for k in range(2, len(learnt)):
                if level[learnt[k] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = k
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = level[learnt[1] >> 1]
        return learnt, back_level

    def _redundant(self, lit: int) -> bool:
        """Local minimization: drop literals implied by the others."""
        reason = self._reason[lit >> 1]
        if reason < 0:
            return False
        seen = self._seen
        level = self._level
        arena = self._arena
        for k in range(reason, arena[reason - 1]):
            q = arena[k]
            if q == (lit ^ 1) or q == lit:
                continue
            var = q >> 1
            if not seen[var] and level[var] > 0:
                return False
        return True

    def _bump_clause(self, ref: int) -> None:
        # Clause activities live in a side table keyed by arena ref; the
        # GC remaps keys on compaction.
        act = self._clause_act.get(ref, 0.0) + self._cla_inc
        self._clause_act[ref] = act
        if act > 1e20:
            inv = 1e-20
            for key in self._clause_act:
                self._clause_act[key] *= inv
            self._cla_inc *= inv

    # ------------------------------------------------------------------
    # Learned clause management
    # ------------------------------------------------------------------

    def _reduce_db(self) -> None:
        learnts = self._learnt_refs
        act = self._clause_act
        arena = self._arena
        locked = set()
        reason = self._reason
        for var in range(self.num_vars):
            r = reason[var]
            if r >= 0:
                locked.add(r)
        learnts.sort(key=lambda ref: act.get(ref, 0.0))
        keep_from = len(learnts) // 2
        removed = []
        kept = []
        for i, ref in enumerate(learnts):
            if i < keep_from and arena[ref - 1] - ref > 2 and ref not in locked:
                removed.append(ref)
            else:
                kept.append(ref)
        for ref in removed:
            self._detach(ref)
            act.pop(ref, None)
            self._wasted += arena[ref - 1] - ref + 1
        self._learnt_refs = kept
        self.learned_deleted += len(removed)
        if (self._wasted > _GC_MIN_WASTE
                and self._wasted * 2 > len(arena)):
            self._compact()

    def _detach(self, ref: int) -> None:
        arena = self._arena
        for lit in (arena[ref], arena[ref + 1]):
            refs = self._watch_refs[lit ^ 1]
            blks = self._watch_blk[lit ^ 1]
            for p in range(len(refs)):
                if refs[p] == ref:
                    refs[p] = refs[-1]
                    blks[p] = blks[-1]
                    refs.pop()
                    blks.pop()
                    break

    def _compact(self) -> None:
        """Rebuild the arena without dead gaps, remapping refs in place.

        Order-preserving: clause ref lists, watch/binary entries and
        reason refs are rewritten to the new offsets without reordering
        anything, so the search continues exactly as it would have
        without collection.
        """
        arena = self._arena
        new: List[int] = [0]
        remap: Dict[int, int] = {}
        for refs in (self._clause_refs, self._learnt_refs):
            for i, ref in enumerate(refs):
                end = arena[ref - 1]
                nref = len(new) + 1
                new.append(nref + end - ref)
                new.extend(arena[ref:end])
                remap[ref] = nref
                refs[i] = nref
        for lst in self._watch_refs:
            for p in range(len(lst)):
                lst[p] = remap[lst[p]]
        for lst in self._bin_refs:
            for p in range(len(lst)):
                lst[p] = remap[lst[p]]
        reason = self._reason
        for var in range(self.num_vars):
            r = reason[var]
            if r >= 0:
                reason[var] = remap[r]
        self._clause_act = {remap[ref]: activity
                            for ref, activity in self._clause_act.items()}
        self._arena = new
        self._wasted = 0

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (),
              conflict_budget: Optional[int] = None) -> Optional[bool]:
        """Search for a model.

        Args:
            assumptions: DIMACS literals assumed true for this call only.
            conflict_budget: abort with ``None`` after this many conflicts.

        Returns:
            True if satisfiable, False if unsatisfiable (under assumptions),
            None if the budget ran out.
        """
        self._model = None
        if self._unsat:
            return False
        self._cancel_until(0)
        assumed = []
        for dl in assumptions:
            var = abs(dl)
            self.ensure_vars(var)
            internal = var - 1
            if internal in self._eliminated:
                self._restore(internal)
            self._frozen.add(internal)
            assumed.append(internal * 2 + (0 if dl > 0 else 1))
        if self._unsat:
            return False
        if self.preprocess_enabled and not self.simplify():
            return False
        if self._propagate() is not None:
            self._unsat = True
            return False

        budget_left = conflict_budget
        restart_base = self.restart_base
        restart_index = 0
        restart_limit = restart_base * _luby_sequence(restart_index)
        conflicts_here = 0
        max_learnts = max(2000, len(self._clause_refs) // 2)
        var_decay = self.var_decay

        progress_interval = self.progress_interval
        progress_hook = self.progress_hook

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if (progress_interval and progress_hook is not None
                        and self.conflicts % progress_interval == 0):
                    snapshot = self.stats()
                    if budget_left is not None:
                        snapshot["budget_left"] = budget_left
                    progress_hook(snapshot)
                if budget_left is not None:
                    budget_left -= 1
                    if budget_left <= 0:
                        self._cancel_until(0)
                        return None
                if not self._trail_lim:
                    self._unsat = True
                    return False
                if len(self._trail_lim) <= len(assumed):
                    # Conflict forced by the assumptions alone.
                    self._cancel_until(0)
                    return False
                learnt, back_level = self._analyze(conflict)
                back_level = max(back_level, 0)
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    # Unit learnt: fix at the root; assumptions get re-placed
                    # by the decision loop since the trail is now empty.
                    self._cancel_until(0)
                    if not self._enqueue(learnt[0], None):
                        self._unsat = True
                        return False
                else:
                    ref = self._alloc(learnt)
                    self._attach(ref)
                    self._learnt_refs.append(ref)
                    self._clause_act[ref] = self._cla_inc
                    self._enqueue(learnt[0], ref)
                self._var_inc /= var_decay
                self._cla_inc /= 0.999
                if len(self._learnt_refs) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                if conflicts_here >= restart_limit:
                    conflicts_here = 0
                    restart_index += 1
                    restart_limit = restart_base * _luby_sequence(restart_index)
                    self.restarts += 1
                    self._cancel_until(0)
                    # Light inprocessing: once enough new root facts have
                    # accumulated, clean the clause database against them.
                    if (self.preprocess_enabled and self.inprocess_enabled
                            and len(self._trail) - self._last_root_size
                            >= self.inprocess_min_units):
                        self.inprocess_runs += 1
                        self.inprocess_removed += root_simplify(self)
                        self._last_root_size = len(self._trail)
                        if self._unsat:
                            return False
                continue
            # No conflict: place assumptions, then decide.
            if len(self._trail_lim) < len(assumed):
                lit = assumed[len(self._trail_lim)]
                val = self._lit_value(lit)
                if val == 1:
                    self._trail_lim.append(len(self._trail))
                    continue
                if val == 0:
                    self._cancel_until(0)
                    return False
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                continue
            var = self._pick_branch_var()
            if var == _UNDEF:
                self._model = self._extend_model()
                return True
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            lit = var * 2 + (1 - self._phase[var])
            self._enqueue(lit, None)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------

    def model_value(self, dimacs_var: int) -> bool:
        """Value of a variable in the most recent satisfying assignment.

        Reads the extended model snapshot when one exists, so variables
        removed by the preprocessor (pure literals, bounded elimination)
        still answer exactly as they would in an unpreprocessed run.
        """
        var = dimacs_var - 1
        if var >= self.num_vars:
            return False
        source = self._model if self._model is not None else self._assign
        val = source[var]
        if val == _UNDEF:
            return False
        return val == 1
