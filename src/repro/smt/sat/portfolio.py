"""Seeded portfolio racing for the CDCL core.

Races N :class:`~.solver.SatSolver` processes with diversified
configurations — restart pacing, VSIDS decay, initial phases, random
decisions — over the *same* CNF, and reports one verdict.  CDCL runtimes
are heavy-tailed in the configuration, so the minimum over a few cheap
diversified runs routinely beats any fixed configuration; this is the
classic ManySAT/Plingeling recipe, minus clause sharing.

Determinism contract (regardless of finish order):

* **UNSAT** is a unique verdict — the first refutation wins outright and
  the remaining workers are cancelled.  Which worker refuted first may
  vary run to run, but the verdict (and absence of a model) cannot.
* **SAT** models differ between configurations, so a satisfying worker
  with seed ``s`` only cancels the seeds *above* ``s``; the race keeps
  waiting on the seeds below.  The winner is therefore the lowest seed
  that produces a verdict within its own conflict budget — a property of
  the seed set, not of scheduling — and the reported model is always
  that worker's.  Seed 0 runs the vanilla configuration, so for a fixed
  shipped CNF a seed-0 win reproduces a from-scratch vanilla solve of
  that CNF bit-identically.
* **UNKNOWN** only when every worker exhausts its budget.

Workers are plain ``multiprocessing.Process`` children connected by
pipes (the same process-isolation approach as the batch engine's group
pool); each rebuilds a solver from the shipped DIMACS clauses and ships
back the verdict, the model and its counter snapshot.  Preprocessing is
configuration-independent, so the SMT facade runs it once in the parent
and ships the already-simplified clause database with
``preprocess=False`` — the workers race only the search (direct callers
of :func:`race` can still ship a raw CNF with ``preprocess=True`` and
let each worker simplify locally).  Any spawn or transport failure
raises :class:`PortfolioError`; callers (the SMT facade) fall back to a
serial solve and say so.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["PortfolioConfig", "PortfolioResult", "PortfolioError",
           "default_configs", "race"]

# Test hook: seed index -> seconds to sleep before solving.  Lets tests
# skew finish order arbitrarily to prove the determinism contract;
# inherited by fork, harmless in production (empty).
_TEST_DELAYS: Dict[int, float] = {}


class PortfolioError(RuntimeError):
    """The race could not produce a verdict (spawn/transport failure)."""


@dataclass(frozen=True)
class PortfolioConfig:
    """One worker's solver configuration.

    ``seed`` doubles as the worker's rank for the deterministic-winner
    rule: lower seeds are canonical.  Seed 0 must stay the vanilla
    configuration (defaults of :class:`~.solver.SatSolver`) so a
    seed-0 win reproduces a vanilla solve of the shipped CNF
    bit-identically.
    """

    seed: int
    restart_base: int = 128
    var_decay: float = 0.95
    phase_init: str = "false"
    random_decision_freq: float = 0.0

    def build(self):
        from .solver import SatSolver
        return SatSolver(seed=self.seed,
                         restart_base=self.restart_base,
                         var_decay=self.var_decay,
                         phase_init=self.phase_init,
                         random_decision_freq=self.random_decision_freq)


# The first few hand-picked diversification points; past these, workers
# vary only the seed of the randomized configuration.
_BASE_VARIANTS: List[dict] = [
    {},                                                # vanilla
    {"phase_init": "true"},                            # inverted phases
    {"restart_base": 512},                             # slow restarts
    {"phase_init": "random", "random_decision_freq": 0.02},
    {"restart_base": 64, "var_decay": 0.90},           # rapid + greedy
    {"phase_init": "random", "restart_base": 256},
]


def default_configs(n: int) -> List[PortfolioConfig]:
    """The standard diversification ladder for an ``n``-worker race."""
    if n < 1:
        raise ValueError("portfolio size must be >= 1")
    configs = []
    for i in range(n):
        variant = _BASE_VARIANTS[i % len(_BASE_VARIANTS)]
        configs.append(PortfolioConfig(seed=i, **variant))
    return configs


@dataclass
class PortfolioResult:
    """Outcome of one race.

    ``outcome`` follows ``SatSolver.solve``: True / False / None.
    ``model`` is the winner's extended model indexed by DIMACS var - 1
    (present iff SAT).  ``stats`` is the winner's counter snapshot (for
    UNKNOWN: the worker with the most conflicts, i.e. the deepest
    attempt).  ``worker_outcomes`` maps seed -> outcome for every worker
    that reported before the race was decided.
    """

    outcome: Optional[bool]
    winner: Optional[PortfolioConfig]
    model: Optional[List[bool]] = None
    stats: Dict[str, int] = field(default_factory=dict)
    workers: int = 0
    worker_outcomes: Dict[int, Optional[bool]] = field(default_factory=dict)


def _worker(conn, config: PortfolioConfig, clauses: List[List[int]],
            num_vars: int, assumptions: List[int],
            conflict_budget: Optional[int], preprocess: bool) -> None:
    """Child body: rebuild, solve, ship (outcome, model, stats)."""
    try:
        delay = _TEST_DELAYS.get(config.seed)
        if delay:
            time.sleep(delay)
        solver = config.build()
        solver.preprocess_enabled = preprocess
        solver.ensure_vars(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        outcome = solver.solve(assumptions, conflict_budget=conflict_budget)
        model = None
        if outcome:
            model = [solver.model_value(v) for v in range(1, num_vars + 1)]
        conn.send((config.seed, outcome, model, solver.stats()))
    except Exception as exc:  # pragma: no cover - transport diagnostics
        try:
            conn.send((config.seed, "error", repr(exc), None))
        except Exception:
            pass
    finally:
        conn.close()


def race(clauses: List[List[int]], num_vars: int,
         assumptions: Sequence[int] = (),
         conflict_budget: Optional[int] = None,
         preprocess: bool = True,
         configs: Optional[Sequence[PortfolioConfig]] = None,
         timeout: Optional[float] = None) -> PortfolioResult:
    """Race diversified solver processes over one CNF; see module doc.

    Raises :class:`PortfolioError` if the race machinery itself fails
    (cannot spawn, workers die without reporting, timeout) — callers
    should treat that as "portfolio unavailable" and solve serially.
    """
    if configs is None:
        configs = default_configs(2)
    configs = sorted(configs, key=lambda c: c.seed)
    seeds = [c.seed for c in configs]
    if len(set(seeds)) != len(seeds):
        raise ValueError("portfolio seeds must be unique")
    by_seed = {c.seed: c for c in configs}

    ctx = multiprocessing.get_context()
    procs: Dict[int, multiprocessing.Process] = {}
    conns = {}
    try:
        for config in configs:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker,
                args=(child_conn, config, clauses, num_vars,
                      list(assumptions), conflict_budget, preprocess),
                daemon=True)
            proc.start()
            child_conn.close()
            procs[config.seed] = proc
            conns[config.seed] = parent_conn
    except Exception as exc:
        _terminate(procs, conns)
        raise PortfolioError(f"could not spawn portfolio workers: {exc!r}")

    deadline = None if timeout is None else time.monotonic() + timeout
    reported: Dict[int, Tuple[Optional[bool], Optional[List[bool]], dict]] = {}
    sat_seed: Optional[int] = None  # lowest SAT seed so far
    try:
        while True:
            pending = [s for s in conns
                       if s not in reported
                       and (sat_seed is None or s < sat_seed)]
            if not pending:
                break
            wait_for = [conns[s] for s in pending]
            budget = (None if deadline is None
                      else max(0.0, deadline - time.monotonic()))
            ready = multiprocessing.connection.wait(wait_for, budget)
            if not ready:
                raise PortfolioError(
                    f"portfolio timed out after {timeout}s with "
                    f"{len(pending)} workers outstanding")
            for conn in ready:
                seed = next(s for s in pending if conns[s] is conn)
                try:
                    msg = conn.recv()
                except EOFError:
                    raise PortfolioError(
                        f"portfolio worker seed={seed} died "
                        "without reporting")
                if msg[1] == "error":
                    raise PortfolioError(
                        f"portfolio worker seed={seed} failed: {msg[2]}")
                _, outcome, model, stats = msg
                reported[seed] = (outcome, model, stats)
                if outcome is False:
                    # UNSAT is unique: first refutation decides the race.
                    return PortfolioResult(
                        outcome=False, winner=by_seed[seed], stats=stats,
                        workers=len(configs),
                        worker_outcomes={s: r[0]
                                         for s, r in reported.items()})
                if outcome is True and (sat_seed is None or seed < sat_seed):
                    # Cancel higher seeds; keep waiting on lower ones —
                    # any of them either beats this verdict (lower seed)
                    # or exhausts its budget.
                    sat_seed = seed
                    for other, proc in procs.items():
                        if other > seed and other not in reported:
                            proc.terminate()
    finally:
        _terminate(procs, conns)

    worker_outcomes = {s: r[0] for s, r in reported.items()}
    if sat_seed is not None:
        outcome, model, stats = reported[sat_seed]
        return PortfolioResult(outcome=True, winner=by_seed[sat_seed],
                               model=model, stats=stats,
                               workers=len(configs),
                               worker_outcomes=worker_outcomes)
    if not reported:
        raise PortfolioError("no portfolio worker reported a result")
    # Everyone exhausted the budget: UNKNOWN.  Attribute stats to the
    # deepest attempt (most conflicts; seed breaks ties) so budget
    # diagnostics reflect the hardest try.
    deepest = max(reported,
                  key=lambda s: (reported[s][2].get("conflicts", 0), -s))
    return PortfolioResult(outcome=None, winner=by_seed[deepest],
                           stats=reported[deepest][2],
                           workers=len(configs),
                           worker_outcomes=worker_outcomes)


def _terminate(procs, conns) -> None:
    for proc in procs.values():
        if proc.is_alive():
            proc.terminate()
    for proc in procs.values():
        proc.join(timeout=5.0)
    for conn in conns.values():
        try:
            conn.close()
        except Exception:
            pass
