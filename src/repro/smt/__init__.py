"""From-scratch SMT substrate: terms, bit-blasting, CNF, CDCL SAT, models.

This package stands in for Z3 in the original Minesweeper: the network
encoding only needs booleans, fixed-width bit-vectors and cardinality sums,
all of which bit-blast exactly into CNF for the CDCL core.
"""

from .solver import Model, Result, SAT, Solver, UNKNOWN, UNSAT
from .terms import (
    BOOL,
    Context,
    FALSE,
    TRUE,
    Term,
    and_,
    at_least_k,
    at_most_k,
    bit,
    bool_var,
    bv_add,
    bv_ite,
    bv_sort,
    bv_val,
    bv_var,
    default_context,
    eq,
    exactly_k,
    iff,
    implies,
    ite,
    ne,
    not_,
    or_,
    uge,
    ugt,
    ule,
    ult,
    xor,
)
from .evaluator import evaluate
from .lra import LinExpr, solve_linear_system

__all__ = [
    "Solver", "Model", "Result", "SAT", "UNSAT", "UNKNOWN",
    "Context", "Term", "BOOL", "TRUE", "FALSE",
    "bool_var", "not_", "and_", "or_", "implies", "iff", "xor", "ite",
    "bv_sort", "bv_val", "bv_var", "bv_add", "bv_ite",
    "eq", "ne", "ule", "ult", "uge", "ugt", "bit",
    "at_most_k", "at_least_k", "exactly_k",
    "evaluate", "default_context",
    "LinExpr", "solve_linear_system",
]
