"""Command-line interface: verify configuration directories directly.

Examples::

    python -m repro show configs/
    python -m repro analyze configs/ --json
    python -m repro verify configs/ reachability --sources R1 \
        --dest-prefix 10.9.0.0/24 --max-failures 1
    python -m repro verify configs/ blackholes --dest-prefix 10.0.0.0/8
    python -m repro verify configs/ loops
    python -m repro verify-batch configs/ --property reachability \
        --property blackholes --dest-prefix 10.9.0.0/24 --workers 4
    python -m repro verify-batch configs/ --spec queries.json
    python -m repro diff old-configs/ new-configs/ --spec queries.json \
        --cache .repro-verdicts.json --json
    python -m repro verify-batch configs/ --property loops \
        --workers 4 --profile --trace run.trace.json
    python -m repro verify-batch configs/ --property loops \
        --metrics-out metrics.prom --log-json run.log.jsonl
    python -m repro stats run.trace.json
    python -m repro history list
    python -m repro history show -1
    python -m repro history compare -2 -1 --threshold 10
    python -m repro equivalence configs/ R1 R2
    python -m repro simulate configs/ --from R1 --dst 10.9.0.5

Verifying subcommands (verify, verify-batch, diff, analyze) append one
row to the run ledger (``.repro-ledger.sqlite``; ``--ledger FILE`` /
``REPRO_LEDGER`` override, ``--no-ledger`` to skip) — ``repro
history`` lists, inspects and regression-diffs recorded runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from typing import List, Optional

from repro import obs
from repro.core import BatchQuery, EncoderOptions, Verifier, properties as P
from repro.net import load_network

__all__ = ["main"]

PROPERTY_CHOICES = ["reachability", "isolation", "blackholes", "loops",
                    "bounded-length", "waypoint", "prefix-leak"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Minesweeper-style network configuration verification")
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="summarize a parsed network")
    show.add_argument("configs", help="directory of config files")

    analyze = sub.add_parser(
        "analyze",
        help="lint configs: dangling references, session mismatches, "
             "SMT-proven shadowed rules (exit 0/1/2 = clean/warn/error)")
    analyze.add_argument("configs", help="directory of config files")
    analyze.add_argument("--json", action="store_true",
                         help="machine-readable report on stdout")
    analyze.add_argument("--sarif", action="store_true",
                         help="SARIF 2.1.0 report on stdout (for CI "
                              "code-scanning upload)")
    analyze.add_argument("--no-smt", action="store_true",
                         help="skip the solver-backed shadow checks")
    analyze.add_argument("--rules", nargs="*", default=None,
                         help="only report these rule ids")
    _add_ledger_flags(analyze)

    verify = sub.add_parser("verify", help="verify a property")
    verify.add_argument("configs")
    verify.add_argument("property", choices=PROPERTY_CHOICES)
    verify.add_argument("--sources", nargs="*", default=None,
                        help="source routers (default: all)")
    verify.add_argument("--dest-prefix", default=None,
                        help="destination prefix A.B.C.D/len")
    verify.add_argument("--dest-peer", default=None,
                        help="destination external peer name")
    verify.add_argument("--bound", type=int, default=4,
                        help="hop bound for bounded-length")
    verify.add_argument("--waypoints", nargs="*", default=[],
                        help="waypoint chain for the waypoint property")
    verify.add_argument("--max-leak-length", type=int, default=24)
    verify.add_argument("--max-failures", type=int, default=0,
                        help="verify under up to k link failures")
    verify.add_argument("--announced-by", nargs="*", default=[],
                        help="assume these peers announce the destination")
    verify.add_argument("--no-preprocess", action="store_true",
                        help="disable SAT-level CNF preprocessing")
    verify.add_argument("--portfolio", type=int, default=1, metavar="N",
                        help="race N seeded solver processes per check "
                             "(1 = in-process serial solving)")
    _add_observability_flags(verify)

    batch = sub.add_parser(
        "verify-batch",
        help="verify many properties in one run (shared encodings, "
             "optional process-pool parallelism)")
    batch.add_argument("configs")
    _add_query_flags(batch)
    batch.add_argument("--no-preprocess", action="store_true",
                       help="disable SAT-level CNF preprocessing")
    batch.add_argument("--portfolio", type=int, default=1, metavar="N",
                       help="race N seeded solver processes per check "
                            "(1 = in-process serial solving)")
    _add_observability_flags(batch)

    diff = sub.add_parser(
        "diff",
        help="differential verification of two config trees: replay "
             "cached verdicts for queries whose dependency slice is "
             "untouched, re-verify the rest, report verdict flips "
             "(exit 0/1/2 = no new violations/new violations/error)")
    diff.add_argument("old", help="directory with the OLD config tree")
    diff.add_argument("new", help="directory with the NEW config tree")
    _add_query_flags(diff)
    diff.add_argument("--cache", default=None, metavar="FILE",
                      help="verdict-cache file to read and update "
                           "(omit for an in-memory cache: correct, but "
                           "nothing carries over between runs)")
    diff.add_argument("--json", action="store_true",
                      help="machine-readable report on stdout")
    diff.add_argument("--no-preprocess", action="store_true",
                      help="disable SAT-level CNF preprocessing")
    diff.add_argument("--cone-stats", action="store_true",
                      help="report each query's dependency-slice size "
                           "(devices / fragments) on the NEW tree")
    _add_observability_flags(diff)

    equiv = sub.add_parser("equivalence",
                           help="check local equivalence of two routers")
    equiv.add_argument("configs")
    equiv.add_argument("router_a")
    equiv.add_argument("router_b")
    equiv.add_argument("--by-name", action="store_true",
                       help="pair interfaces by name instead of position")

    simulate = sub.add_parser(
        "simulate", help="trace a packet through one concrete environment")
    simulate.add_argument("configs")
    simulate.add_argument("--from", dest="source", required=True)
    simulate.add_argument("--dst", required=True)
    simulate.add_argument("--announce", nargs=2, action="append",
                          metavar=("PEER", "PREFIX"), default=[],
                          help="external announcement (repeatable)")
    simulate.add_argument("--fail", nargs=2, action="append",
                          metavar=("A", "B"), default=[],
                          help="failed link between two routers")

    stats = sub.add_parser(
        "stats",
        help="summarize a trace file written by --trace (phase "
             "breakdown table plus recorded metrics)")
    stats.add_argument("trace", help="trace file (Chrome JSON or JSONL)")

    history = sub.add_parser(
        "history",
        help="inspect the run ledger: list recorded runs, show one, "
             "or compare two for regressions")
    history.add_argument("--ledger", default=None, metavar="FILE",
                         help="ledger database (default: "
                              ".repro-ledger.sqlite or $REPRO_LEDGER)")
    hsub = history.add_subparsers(dest="history_command", required=True)
    hlist = hsub.add_parser("list", help="recorded runs, newest first")
    hlist.add_argument("--limit", type=int, default=20)
    hlist.add_argument("--command", dest="command_filter", default=None,
                       help="only runs of this subcommand")
    hlist.add_argument("--json", action="store_true")
    hshow = hsub.add_parser("show", help="one run in full detail")
    hshow.add_argument("run", help="run id, unique prefix, or -N "
                                   "(-1 = most recent)")
    hshow.add_argument("--json", action="store_true")
    hcmp = hsub.add_parser(
        "compare",
        help="diff two runs: verdicts, CNF sizes, conflicts, phase "
             "timings (exit 0 clean / 1 regression / 2 error)")
    hcmp.add_argument("old", help="baseline run (id, prefix, or -N)")
    hcmp.add_argument("new", help="candidate run (id, prefix, or -N)")
    hcmp.add_argument("--threshold", type=float, default=10.0,
                      metavar="PCT",
                      help="max growth of deterministic count metrics "
                           "(vars/clauses/conflicts) before failing "
                           "(default 10%%)")
    hcmp.add_argument("--time-threshold", type=float, default=50.0,
                      metavar="PCT",
                      help="max growth of timing metrics before "
                           "warning (default 50%%)")
    hcmp.add_argument("--gate-timings", action="store_true",
                      help="timing growth beyond --time-threshold "
                           "fails instead of warning (noisy runners "
                           "beware)")
    hcmp.add_argument("--json", action="store_true")

    serve = sub.add_parser(
        "serve",
        help="verification-as-a-service HTTP daemon: tenant snapshot "
             "store plus a cross-request encoding cache (warm queries "
             "skip parse/build/encode); see docs/SERVING.md")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8750,
                       help="listen port (0 picks a free one; the bound "
                            "address is printed on startup)")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="persist snapshots (configs, metadata, "
                            "verdict caches) here and reload them on "
                            "restart; omit for a memory-only daemon")
    serve.add_argument("--cache-bytes", type=int,
                       default=256 * 1024 * 1024, metavar="N",
                       help="byte budget of the shared network/encoding "
                            "cache (default 256 MiB)")
    serve.add_argument("--cache-ttl", type=float, default=3600.0,
                       metavar="SECONDS",
                       help="evict cache entries idle this long "
                            "(default 3600)")
    serve.add_argument("--allow-local-dirs", default=None, metavar="ROOT",
                       help="enable {\"directory\": ...} ingest bodies, "
                            "confined to paths under ROOT (disabled by "
                            "default: it lets clients read files the "
                            "daemon can see)")
    serve.add_argument("--no-preprocess", action="store_true",
                       help="disable SAT-level CNF preprocessing")
    serve.add_argument("--log-json", default=None, metavar="FILE",
                       help="structured JSON logs ('-' for stderr)")
    _add_ledger_flags(serve)
    return parser


def _add_query_flags(parser: argparse.ArgumentParser) -> None:
    """Query-list flags shared by verify-batch and diff."""
    parser.add_argument("--spec", default=None,
                        help="JSON query-spec file: a list of objects, each "
                             'like {"property": "reachability", "sources": '
                             '["R1"], "dest_prefix": "10.9.0.0/24", '
                             '"max_failures": 1, "label": "edge-reach"}')
    parser.add_argument("--property", dest="properties", action="append",
                        choices=PROPERTY_CHOICES, default=[],
                        help="property to check (repeatable; each repeat "
                             "makes one query from the shared flags below)")
    parser.add_argument("--sources", nargs="*", default=None)
    parser.add_argument("--dest-prefix", default=None)
    parser.add_argument("--dest-peer", default=None)
    parser.add_argument("--bound", type=int, default=4)
    parser.add_argument("--waypoints", nargs="*", default=[])
    parser.add_argument("--max-leak-length", type=int, default=24)
    parser.add_argument("--max-failures", type=int, default=None)
    parser.add_argument("--announced-by", nargs="*", default=[])
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool workers for query groups "
                             "(1 = serial)")


def _add_ledger_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ledger", default=None, metavar="FILE",
                        help="run-ledger database to append this run to "
                             "(default: .repro-ledger.sqlite, or "
                             "$REPRO_LEDGER)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not record this run in the ledger")


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--stats", action="store_true",
                        help="print per-query vars/clauses/conflicts and "
                             "encode/solve time split")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="record pipeline spans; .jsonl writes JSON "
                             "lines, anything else Chrome trace-event "
                             "JSON (Perfetto / chrome://tracing)")
    parser.add_argument("--profile", action="store_true",
                        help="print the phase-breakdown table and "
                             "pipeline metrics after the run")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the run's metrics as Prometheus/"
                             "OpenMetrics text exposition")
    parser.add_argument("--log-json", default=None, metavar="FILE",
                        help="structured JSON logs ('-' for stderr); "
                             "every record carries this run's id")
    _add_ledger_flags(parser)


class _RunContext:
    """Mutable carrier the command handlers fill in while running under
    :func:`_observed`: the loaded network, encoder options and results
    feed the ledger row written at exit."""

    __slots__ = ("tracer", "run_id", "network", "options", "results",
                 "config_hash", "extra")

    def __init__(self, tracer, run_id: str) -> None:
        self.tracer = tracer
        self.run_id = run_id
        self.network = None
        self.options = None
        self.results: List = []
        self.config_hash: Optional[str] = None
        self.extra: dict = {}


@contextmanager
def _observed(args, command: Optional[str] = None):
    """Observe one CLI run end to end.

    Installs a process-wide tracer when anything needs the telemetry —
    ``--trace``/``--profile``/``--metrics-out``, or the run ledger
    (on by default) — then, afterwards, writes the trace file, prints
    the profile tables, writes the Prometheus exposition, and appends
    the ledger row.  Yields a :class:`_RunContext` the handler fills
    in as it goes.
    """
    from repro.obs import ledger as ledgerlib, log as loglib

    ledger_on = (command is not None
                 and not getattr(args, "no_ledger", True))
    want_tracer = bool(args.trace or args.profile
                       or getattr(args, "metrics_out", None) or ledger_on)
    run_id = loglib.new_run_id()
    log_handler = None
    if getattr(args, "log_json", None):
        log_handler = loglib.configure(args.log_json, run=run_id)
    else:
        loglib.set_run_id(run_id)
    ctx = _RunContext(obs.Tracer() if want_tracer else obs.NULL_TRACER,
                      run_id)
    started = time.time()
    loglib.event("run.start", command=command or args.command,
                 argv=list(sys.argv[1:]))
    try:
        if want_tracer:
            with obs.use(ctx.tracer):
                yield ctx
        else:
            yield ctx
    finally:
        loglib.event("run.finish", command=command or args.command,
                     seconds=round(time.time() - started, 4))
        if log_handler is not None:
            loglib.unconfigure(log_handler)
        loglib.set_run_id(None)
    tracer = ctx.tracer
    if args.trace:
        obs.export.write_trace(tracer, args.trace)
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.profile:
        print(obs.export.phase_table(tracer))
        if len(tracer.metrics):
            print(obs.export.metrics_table(tracer))
    if getattr(args, "metrics_out", None):
        obs.promexport.write_prometheus(tracer.metrics, args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if ledger_on:
        record = ledgerlib.build_record(
            command, sys.argv[1:], run_id=run_id,
            network=ctx.network, options=ctx.options,
            results=ctx.results, tracer=tracer,
            started=started, config_hash=ctx.config_hash,
            extra=ctx.extra)
        _append_ledger(args, record)


def _append_ledger(args, record) -> None:
    from repro.obs import ledger as ledgerlib

    path = getattr(args, "ledger", None) or ledgerlib.default_ledger_path()
    try:
        with ledgerlib.RunLedger(path) as ledger:
            ledger.append(record)
    except Exception as exc:
        # Recording must never break verification itself.
        print(f"warning: could not record run in ledger {path}: {exc}",
              file=sys.stderr)


def _stats_line(result) -> str:
    """The per-query --stats detail line (same for verify and batch)."""
    return (f"  vars={result.num_variables} "
            f"clauses={result.num_clauses} "
            f"conflicts={result.conflicts} "
            f"encode={result.encode_seconds * 1e3:.1f}ms "
            f"(shared={result.encode_shared_seconds * 1e3:.1f}ms "
            f"query={result.encode_query_seconds * 1e3:.1f}ms) "
            f"solve={result.solve_seconds * 1e3:.1f}ms")


def _property_from_spec(kind: str, spec: dict) -> P.Property:
    """Build a property from a flat spec dict (CLI flags or JSON entry).

    The one definition lives in :mod:`repro.serve.schemas` (the serve
    API accepts the same spec shape); here its 400s become the CLI's
    ``SystemExit`` messages.
    """
    from repro.serve.schemas import ApiError, property_from_spec

    try:
        return property_from_spec(kind, spec)
    except ApiError as exc:
        raise SystemExit(exc.message) from exc


def _make_property(args) -> P.Property:
    return _property_from_spec(args.property, {
        "sources": args.sources,
        "dest_prefix": args.dest_prefix,
        "dest_peer": args.dest_peer,
        "bound": args.bound,
        "waypoints": args.waypoints,
        "max_leak_length": args.max_leak_length,
    })


def _cmd_show(args) -> int:
    network = load_network(args.configs)
    print(f"{len(network.devices)} routers, "
          f"{len(network.internal_links())} links, "
          f"{len(network.externals)} external peers, "
          f"{network.total_config_lines()} config lines")
    for name in network.router_names():
        device = network.device(name)
        neighbors = sorted({e.target for e in network.edges_from(name)})
        peers = [p.name for p in network.externals_at(name)]
        protos = ",".join(sorted(device.protocols()))
        line = f"  {name} [{protos}] -> {', '.join(neighbors)}"
        if peers:
            line += f" | external: {', '.join(peers)}"
        print(line)
    return 0


def _cmd_analyze(args) -> int:
    from pathlib import Path

    from repro.analysis import format_text, to_json, to_sarif
    from repro.analysis.engine import analyze_configs

    if args.json and args.sarif:
        raise SystemExit("--json and --sarif are mutually exclusive")
    directory = Path(args.configs)
    if not directory.is_dir():
        raise SystemExit(f"not a directory: {directory}")
    suffixes = (".cfg", ".conf", ".txt")
    texts = {entry.name: entry.read_text()
             for entry in sorted(directory.iterdir())
             if entry.suffix.lower() in suffixes and entry.is_file()}
    if not texts:
        raise SystemExit(f"no config files in {directory}")
    report = analyze_configs(texts, smt=not args.no_smt)
    if args.rules is not None:
        wanted = set(args.rules)
        report.diagnostics = [d for d in report.diagnostics
                              if d.rule_id in wanted]
        report.suppressed = [d for d in report.suppressed
                             if d.rule_id in wanted]
    if args.sarif:
        print(to_sarif(report))
    else:
        print(to_json(report) if args.json else format_text(report))
    if not args.no_ledger:
        from repro.obs import ledger as ledgerlib

        _append_ledger(args, ledgerlib.build_record(
            "analyze", sys.argv[1:],
            config_hash=ledgerlib.texts_hash(texts),
            extra={"diagnostics": len(report.diagnostics),
                   "suppressed": len(report.suppressed),
                   "exit_code": report.exit_code}))
    return report.exit_code


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _check_portfolio_width(portfolio: int) -> None:
    if portfolio < 1:
        raise SystemExit("--portfolio must be >= 1")
    cpus = _available_cpus()
    if portfolio > cpus:
        print(f"warning: --portfolio {portfolio} exceeds the "
              f"{cpus} available CPU core(s); racing workers will "
              "time-slice and checks will likely get SLOWER, not "
              "faster", file=sys.stderr)


def _cmd_verify(args) -> int:
    _check_portfolio_width(args.portfolio)
    with _observed(args, command="verify") as ctx:
        network = load_network(args.configs)
        verifier = Verifier(network, options=EncoderOptions(
            preprocess=not args.no_preprocess,
            portfolio=args.portfolio))
        prop = _make_property(args)
        assumptions = [P.announces(peer) for peer in args.announced_by]
        result = verifier.verify(prop, max_failures=args.max_failures,
                                 assumptions=assumptions)
        ctx.network, ctx.options = network, verifier.options
        ctx.results = [result]
    print(result)
    if args.stats:
        print(_stats_line(result))
    if result.holds is False and result.counterexample is not None:
        print(result.counterexample.summary())
    return 0 if result.holds else 1


def _batch_queries(args) -> List[BatchQuery]:
    queries: List[BatchQuery] = []
    if args.spec:
        try:
            with open(args.spec) as handle:
                entries = json.load(handle)
        except OSError as exc:
            raise SystemExit(f"cannot read --spec file: {exc}")
        except json.JSONDecodeError as exc:
            raise SystemExit(f"--spec is not valid JSON: {exc}")
        if not isinstance(entries, list):
            raise SystemExit("--spec must contain a JSON list of queries")
        for i, entry in enumerate(entries):
            kind = entry.get("property")
            if kind not in PROPERTY_CHOICES:
                raise SystemExit(
                    f"query {i}: unknown property {kind!r} "
                    f"(choose from {', '.join(PROPERTY_CHOICES)})")
            assumptions = tuple(P.announces(peer)
                                for peer in entry.get("announced_by", []))
            queries.append(BatchQuery(
                prop=_property_from_spec(kind, entry),
                max_failures=entry.get("max_failures"),
                assumptions=assumptions,
                label=entry.get("label")))
    shared = {
        "sources": args.sources,
        "dest_prefix": args.dest_prefix,
        "dest_peer": args.dest_peer,
        "bound": args.bound,
        "waypoints": args.waypoints,
        "max_leak_length": args.max_leak_length,
    }
    assumptions = tuple(P.announces(peer) for peer in args.announced_by)
    for kind in args.properties:
        queries.append(BatchQuery(
            prop=_property_from_spec(kind, shared),
            max_failures=args.max_failures,
            assumptions=assumptions))
    if not queries:
        raise SystemExit(
            f"{args.command} needs --spec and/or at least one --property")
    return queries


def _cmd_verify_batch(args) -> int:
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    _check_portfolio_width(args.portfolio)
    with _observed(args, command="verify-batch") as ctx:
        network = load_network(args.configs)
        verifier = Verifier(network, options=EncoderOptions(
            preprocess=not args.no_preprocess,
            portfolio=args.portfolio))
        queries = _batch_queries(args)
        results = verifier.verify_batch(queries, workers=args.workers)
        ctx.network, ctx.options = network, verifier.options
        ctx.results = results
    status_text = {True: "HOLDS", False: "VIOLATED", None: "UNKNOWN"}
    for query, result in zip(queries, results):
        line = (f"{result.property_name}: {status_text[result.holds]} "
                f"({result.seconds * 1e3:.1f} ms)")
        if result.message:
            line += f" — {result.message}"
        print(line)
        if args.stats:
            print(_stats_line(result))
        if result.holds is False and result.counterexample is not None:
            print("  " + result.counterexample.summary()
                  .replace("\n", "\n  "))
    total = sum(r.seconds for r in results)
    holding = sum(1 for r in results if r.holds is True)
    print(f"{holding}/{len(results)} hold, total {total * 1e3:.1f} ms")
    return 0 if all(r.holds is True for r in results) else 1


def _cmd_diff(args) -> int:
    from repro.diff import (
        DiffError,
        VerdictCache,
        diff_trees,
        render_text,
        to_json,
    )

    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    cache = VerdictCache.load(args.cache) if args.cache else VerdictCache()
    try:
        with _observed(args, command="diff") as ctx:
            queries = _batch_queries(args)
            options = EncoderOptions(preprocess=not args.no_preprocess)
            report = diff_trees(args.old, args.new, queries,
                                options=options, workers=args.workers,
                                cache=cache, cone_stats=args.cone_stats)
            ctx.options = options
            # NEW-side verdicts (with replay flags) are the run's
            # outcome; the pair of tree hashes anchors reproducibility.
            ctx.results = [q.new for q in report.queries]
            ctx.config_hash = report.new_hash
            ctx.extra = {
                "old_dir": str(args.old), "new_dir": str(args.new),
                "old_hash": report.old_hash,
                "changed_devices": len(report.changed_devices),
                "flips": len(report.flips),
                "new_violations": len(report.new_violations),
            }
    except DiffError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    code = report.exit_code
    if args.json:
        print(json.dumps(to_json(report, exit_code=code), indent=1))
    else:
        print(render_text(report))
    if args.cache and cache.dirty:
        cache.save()
    return code


def _cmd_stats(args) -> int:
    try:
        data = obs.export.read_trace(args.trace)
    except OSError as exc:
        raise SystemExit(f"cannot read trace file: {exc}")
    except (ValueError, KeyError) as exc:
        raise SystemExit(f"not a recognizable trace file: {exc}")
    print(obs.export.phase_table(data))
    if data.get("metrics"):
        print(obs.export.metrics_table(data["metrics"]))
    return 0


def _cmd_history(args) -> int:
    from repro.obs import ledger as ledgerlib

    path = args.ledger or ledgerlib.default_ledger_path()
    try:
        with ledgerlib.RunLedger(path) as ledger:
            if args.history_command == "list":
                return _history_list(args, ledger)
            if args.history_command == "show":
                return _history_show(args, ledger)
            return _history_compare(args, ledger)
    except ledgerlib.LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _fmt_when(epoch: float) -> str:
    from datetime import datetime

    return datetime.fromtimestamp(epoch).strftime("%Y-%m-%d %H:%M:%S")


def _history_list(args, ledger) -> int:
    runs = ledger.runs(limit=args.limit, command=args.command_filter)
    if args.json:
        print(json.dumps(runs, indent=1))
        return 0
    if not runs:
        print(f"(no runs recorded in {ledger.path})")
        return 0
    header = (f"{'run':<12}  {'command':<12}  {'when':<19}  "
              f"{'secs':>7}  {'queries':>7}  verdicts")
    print(header)
    print("-" * len(header))
    for run in runs:
        if run["queries"]:
            verdict = f"{run['holding']}/{run['queries']} hold"
            if run["cached"]:
                verdict += f" ({run['cached']} cached)"
        elif "diagnostics" in run["extra"]:
            verdict = f"{run['extra']['diagnostics']} finding(s)"
        else:
            verdict = "-"
        print(f"{run['run_id']:<12}  {run['command']:<12}  "
              f"{_fmt_when(run['started']):<19}  "
              f"{run['seconds']:>7.2f}  {run['queries']:>7}  {verdict}")
    return 0


def _history_show(args, ledger) -> int:
    record = ledger.get(args.run)
    if args.json:
        from dataclasses import asdict

        print(json.dumps(asdict(record), indent=1))
        return 0
    print(f"run      {record.run_id}  ({record.command})")
    print(f"when     {_fmt_when(record.started)}  "
          f"({record.seconds:.2f}s)")
    print(f"argv     {' '.join(record.argv)}")
    if record.config_hash:
        print(f"configs  {record.config_hash[:16]}")
    if record.options:
        print(f"options  {record.options}")
    if record.workload:
        detail = " ".join(f"{k}={v}"
                          for k, v in sorted(record.workload.items()))
        print(f"network  {detail}")
    print(f"verdicts {record.verdict_summary()}")
    if record.queries:
        print("queries:")
        status = {True: "HOLDS", False: "VIOLATED", None: "UNKNOWN"}
        for q in record.queries:
            line = (f"  {q['name']}: {status[q['holds']]} "
                    f"{q['seconds'] * 1e3:.1f}ms vars={q['vars']} "
                    f"clauses={q['clauses']} conflicts={q['conflicts']}")
            if q["cached"]:
                line += " [cached]"
            print(line)
    if record.phases:
        print("phases:")
        ordered = sorted(record.phases.items(),
                         key=lambda kv: -kv[1]["total_seconds"])
        for name, row in ordered:
            print(f"  {name:<28} x{row['count']:<4} "
                  f"{row['total_seconds'] * 1e3:>9.1f}ms")
    if record.extra:
        print("extra:")
        for key, value in sorted(record.extra.items()):
            print(f"  {key} = {value}")
    return 0


def _history_compare(args, ledger) -> int:
    from repro.obs.ledger import compare_runs

    old = ledger.get(args.old)
    new = ledger.get(args.new)
    report = compare_runs(old, new,
                          threshold=args.threshold / 100.0,
                          time_threshold=args.time_threshold / 100.0,
                          gate_timings=args.gate_timings)
    code = 1 if report["regressions"] else 0
    if args.json:
        print(json.dumps({**report, "exit_code": code}, indent=1))
        return code
    print(f"comparing {old.run_id} ({old.command}) -> "
          f"{new.run_id} ({new.command})")
    if report["config_changed"]:
        print("note: config hashes differ — the runs verified "
              "different networks")
    if report["options_changed"]:
        print("note: encoder options differ between the runs")
    status = {True: "HOLDS", False: "VIOLATED", None: "UNKNOWN"}
    for entry in report["queries"]:
        deltas = entry["deltas"]
        parts = []
        for fld in ("vars", "clauses", "conflicts"):
            a, b = deltas[fld]["old"], deltas[fld]["new"]
            parts.append(f"{fld} {a}->{b}" if a != b else f"{fld} {a}")
        a, b = deltas["seconds"]["old"], deltas["seconds"]["new"]
        parts.append(f"time {a * 1e3:.1f}->{b * 1e3:.1f}ms")
        verdict = status[entry["old_holds"]]
        if entry["old_holds"] != entry["new_holds"]:
            verdict += f" -> {status[entry['new_holds']]}"
        print(f"  {entry['name']}: {verdict}  " + "  ".join(parts))
    for name in report["missing"]:
        print(f"  {name}: only in baseline run")
    for name in report["added"]:
        print(f"  {name}: only in candidate run")
    if report["phases"]:
        print("phases:")
        for row in report["phases"]:
            print(f"  {row['name']:<28} {row['old'] * 1e3:>9.1f}ms -> "
                  f"{row['new'] * 1e3:>9.1f}ms")
    for text in report["warnings"]:
        print(f"warning: {text}")
    for text in report["regressions"]:
        print(f"REGRESSION: {text}")
    print("result: "
          + (f"{len(report['regressions'])} regression(s)"
             if report["regressions"] else "no regressions"))
    return code


def _cmd_equivalence(args) -> int:
    network = load_network(args.configs)
    result = Verifier(network).verify_local_equivalence(
        args.router_a, args.router_b,
        iface_pairing="by-name" if args.by_name else "sorted")
    print(result)
    return 0 if result.holds else 1


def _cmd_simulate(args) -> int:
    from repro.net import ip as iplib
    from repro.sim import (
        DataPlane,
        Environment,
        ExternalAnnouncement,
        Packet,
        simulate,
    )

    network = load_network(args.configs)
    announcements = [
        ExternalAnnouncement.make(peer, prefix)
        for peer, prefix in args.announce]
    env = Environment.of(announcements,
                         [tuple(pair) for pair in args.fail])
    state = simulate(network, env)
    if not state.converged:
        print("warning: control plane did not converge", file=sys.stderr)
    dataplane = DataPlane(state)
    packet = Packet(dst_ip=iplib.parse_ip(args.dst))
    traces = dataplane.traces(args.source, packet)
    for trace in traces:
        path = " -> ".join(trace.path)
        suffix = f" via {trace.exit_peer}" if trace.exit_peer else ""
        print(f"{path}: {trace.disposition}{suffix}")
    return 0 if all(t.delivered for t in traces) else 1


def _cmd_serve(args) -> int:
    from repro.obs import ledger as ledgerlib, log as loglib
    from repro.serve import SnapshotRegistry, TTLLRUCache, make_server

    log_handler = None
    if args.log_json:
        log_handler = loglib.configure(args.log_json)
    options = EncoderOptions(preprocess=not args.no_preprocess)
    cache = TTLLRUCache(max_bytes=args.cache_bytes,
                        ttl_seconds=args.cache_ttl)
    registry = SnapshotRegistry(cache=cache, options=options,
                                state_dir=args.state_dir)
    ledger_path = (None if args.no_ledger
                   else args.ledger or ledgerlib.default_ledger_path())
    server = make_server(args.host, args.port, registry,
                         ledger_path=ledger_path,
                         local_dir_root=args.allow_local_dirs)
    host, port = server.server_address[:2]
    # Parseable startup line: smoke harnesses bind --port 0 and read
    # the chosen port from here.
    print(f"repro serve listening on http://{host}:{port}", flush=True)
    loglib.event("serve.start", host=host, port=port,
                 state_dir=args.state_dir or "",
                 snapshots=len(registry))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        loglib.event("serve.stop", host=host, port=port)
        if log_handler is not None:
            loglib.unconfigure(log_handler)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "show": _cmd_show,
        "analyze": _cmd_analyze,
        "verify": _cmd_verify,
        "verify-batch": _cmd_verify_batch,
        "diff": _cmd_diff,
        "equivalence": _cmd_equivalence,
        "simulate": _cmd_simulate,
        "stats": _cmd_stats,
        "history": _cmd_history,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. output piped into `head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
