"""Command-line interface: verify configuration directories directly.

Examples::

    python -m repro show configs/
    python -m repro verify configs/ reachability --sources R1 \
        --dest-prefix 10.9.0.0/24 --max-failures 1
    python -m repro verify configs/ blackholes --dest-prefix 10.0.0.0/8
    python -m repro verify configs/ loops
    python -m repro equivalence configs/ R1 R2
    python -m repro simulate configs/ --from R1 --dst 10.9.0.5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import Verifier, properties as P
from repro.net import load_network

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Minesweeper-style network configuration verification")
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="summarize a parsed network")
    show.add_argument("configs", help="directory of config files")

    verify = sub.add_parser("verify", help="verify a property")
    verify.add_argument("configs")
    verify.add_argument("property",
                        choices=["reachability", "isolation", "blackholes",
                                 "loops", "bounded-length", "waypoint",
                                 "prefix-leak"])
    verify.add_argument("--sources", nargs="*", default=None,
                        help="source routers (default: all)")
    verify.add_argument("--dest-prefix", default=None,
                        help="destination prefix A.B.C.D/len")
    verify.add_argument("--dest-peer", default=None,
                        help="destination external peer name")
    verify.add_argument("--bound", type=int, default=4,
                        help="hop bound for bounded-length")
    verify.add_argument("--waypoints", nargs="*", default=[],
                        help="waypoint chain for the waypoint property")
    verify.add_argument("--max-leak-length", type=int, default=24)
    verify.add_argument("--max-failures", type=int, default=0,
                        help="verify under up to k link failures")
    verify.add_argument("--announced-by", nargs="*", default=[],
                        help="assume these peers announce the destination")

    equiv = sub.add_parser("equivalence",
                           help="check local equivalence of two routers")
    equiv.add_argument("configs")
    equiv.add_argument("router_a")
    equiv.add_argument("router_b")
    equiv.add_argument("--by-name", action="store_true",
                       help="pair interfaces by name instead of position")

    simulate = sub.add_parser(
        "simulate", help="trace a packet through one concrete environment")
    simulate.add_argument("configs")
    simulate.add_argument("--from", dest="source", required=True)
    simulate.add_argument("--dst", required=True)
    simulate.add_argument("--announce", nargs=2, action="append",
                          metavar=("PEER", "PREFIX"), default=[],
                          help="external announcement (repeatable)")
    simulate.add_argument("--fail", nargs=2, action="append",
                          metavar=("A", "B"), default=[],
                          help="failed link between two routers")
    return parser


def _make_property(args) -> P.Property:
    if args.property == "reachability":
        return P.Reachability(
            sources=args.sources or "all",
            dest_prefix_text=args.dest_prefix, dest_peer=args.dest_peer)
    if args.property == "isolation":
        return P.Isolation(
            sources=args.sources or [],
            dest_prefix_text=args.dest_prefix, dest_peer=args.dest_peer)
    if args.property == "blackholes":
        return P.NoBlackHoles(dest_prefix_text=args.dest_prefix)
    if args.property == "loops":
        return P.NoForwardingLoops(dest_prefix_text=args.dest_prefix)
    if args.property == "bounded-length":
        return P.BoundedPathLength(
            sources=args.sources or "all", bound=args.bound,
            dest_prefix_text=args.dest_prefix, dest_peer=args.dest_peer)
    if args.property == "waypoint":
        sources = args.sources or []
        if len(sources) != 1:
            raise SystemExit("waypoint needs exactly one --sources router")
        return P.Waypointing(
            source=sources[0], waypoints=args.waypoints,
            dest_prefix_text=args.dest_prefix, dest_peer=args.dest_peer)
    if args.property == "prefix-leak":
        return P.NoPrefixLeak(max_length=args.max_leak_length,
                              dest_prefix_text=args.dest_prefix)
    raise SystemExit(f"unknown property {args.property}")


def _cmd_show(args) -> int:
    network = load_network(args.configs)
    print(f"{len(network.devices)} routers, "
          f"{len(network.internal_links())} links, "
          f"{len(network.externals)} external peers, "
          f"{network.total_config_lines()} config lines")
    for name in network.router_names():
        device = network.device(name)
        neighbors = sorted({e.target for e in network.edges_from(name)})
        peers = [p.name for p in network.externals_at(name)]
        protos = ",".join(sorted(device.protocols()))
        line = f"  {name} [{protos}] -> {', '.join(neighbors)}"
        if peers:
            line += f" | external: {', '.join(peers)}"
        print(line)
    return 0


def _cmd_verify(args) -> int:
    network = load_network(args.configs)
    verifier = Verifier(network)
    prop = _make_property(args)
    assumptions = [P.announces(peer) for peer in args.announced_by]
    result = verifier.verify(prop, max_failures=args.max_failures,
                             assumptions=assumptions)
    print(result)
    if result.holds is False and result.counterexample is not None:
        print(result.counterexample.summary())
    return 0 if result.holds else 1


def _cmd_equivalence(args) -> int:
    network = load_network(args.configs)
    result = Verifier(network).verify_local_equivalence(
        args.router_a, args.router_b,
        iface_pairing="by-name" if args.by_name else "sorted")
    print(result)
    return 0 if result.holds else 1


def _cmd_simulate(args) -> int:
    from repro.net import ip as iplib
    from repro.sim import (
        DataPlane,
        Environment,
        ExternalAnnouncement,
        Packet,
        simulate,
    )

    network = load_network(args.configs)
    announcements = [
        ExternalAnnouncement.make(peer, prefix)
        for peer, prefix in args.announce]
    env = Environment.of(announcements,
                         [tuple(pair) for pair in args.fail])
    state = simulate(network, env)
    if not state.converged:
        print("warning: control plane did not converge", file=sys.stderr)
    dataplane = DataPlane(state)
    packet = Packet(dst_ip=iplib.parse_ip(args.dst))
    traces = dataplane.traces(args.source, packet)
    for trace in traces:
        path = " -> ".join(trace.path)
        suffix = f" via {trace.exit_peer}" if trace.exit_peer else ""
        print(f"{path}: {trace.disposition}{suffix}")
    return 0 if all(t.delivered for t in traces) else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "show": _cmd_show,
        "verify": _cmd_verify,
        "equivalence": _cmd_equivalence,
        "simulate": _cmd_simulate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
