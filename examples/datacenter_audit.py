#!/usr/bin/env python3
"""Audit a folded-Clos BGP data center — the paper's §8.2 scenario.

Builds a fat-tree with BGP everywhere (multipath, per-router private
ASNs, ToR /24 announcements, filtered backbone peerings) and verifies the
suite of §5 properties the paper benchmarks: reachability, bounded path
length ("no valleys"), equal-length pods, spine equivalence, multipath
consistency and absence of black holes.

Run:  python examples/datacenter_audit.py [pods]
"""

import sys

from repro import Verifier
from repro.core import properties as P
from repro.gen import build_fattree


def main() -> None:
    pods = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    tree = build_fattree(pods)
    network = tree.network
    print(f"fat-tree: {pods} pods, {len(network.devices)} routers, "
          f"{len(network.internal_links())} links, "
          f"{len(tree.backbone_peers)} backbone peers")

    verifier = Verifier(network)
    dst_tor = tree.tors[-1]
    dst = tree.tor_subnet(dst_tor)
    other_tors = [t for t in tree.tors if t != dst_tor]
    print(f"destination rack: {dst} on {dst_tor}\n")

    checks = [
        ("all ToRs reach the rack",
         P.Reachability(sources=other_tors, dest_prefix_text=dst)),
        ("paths bounded by 4 hops (no valley routing)",
         P.BoundedPathLength(sources=other_tors, bound=4,
                             dest_prefix_text=dst)),
        ("pod-0 ToRs use equal-length paths",
         P.EqualPathLengths(
             routers=[t for t in other_tors if tree.pod_of(t) == 0],
             dest_prefix_text=dst)),
        ("multipath branches agree",
         P.MultipathConsistency(dest_prefix_text=dst)),
        ("no interior black holes",
         P.NoBlackHoles(allowed=tree.cores, dest_prefix_text=dst)),
        ("rack /24 never leaks past /16 aggregation bound",
         P.NoPrefixLeak(max_length=24, dest_prefix_text=dst)),
    ]
    for label, prop in checks:
        result = verifier.verify(prop)
        print(f"  [{'PASS' if result.holds else 'FAIL'}] {label} "
              f"({result.seconds * 1e3:.0f} ms, "
              f"{result.num_clauses} clauses)")
        if result.holds is False:
            print("        ", result.message)

    # Spine (local) equivalence, chained pairwise as in §8.2.
    for a, b in zip(tree.cores, tree.cores[1:]):
        result = verifier.verify_local_equivalence(a, b)
        print(f"  [{'PASS' if result.holds else 'FAIL'}] "
              f"spines {a} == {b} ({result.seconds * 1e3:.0f} ms)")

    # Fault tolerance: with >= 4 pods each ToR is dual-homed, so one
    # failure is safe; the degenerate 2-pod tree is single-homed and the
    # verifier correctly names the cut link.
    result = verifier.verify(
        P.Reachability(sources=[other_tors[0]], dest_prefix_text=dst),
        max_failures=1)
    expected = pods >= 4
    status = "PASS" if (bool(result.holds) == expected) else "FAIL"
    outcome = "survives" if result.holds else "does not survive"
    print(f"  [{status}] {outcome} any single link failure "
          f"(expected for {pods} pods: "
          f"{'survives' if expected else 'does not'}; "
          f"{result.seconds * 1e3:.0f} ms)")
    if result.holds is False and result.counterexample:
        print(f"         cut: {result.counterexample.failed_links}")


if __name__ == "__main__":
    main()
