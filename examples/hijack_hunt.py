#!/usr/bin/env python3
"""Hunt for management-interface hijacks — the paper's headline finding.

The §8.1 analysis of 152 real networks found 67 networks whose router
management interfaces could be "hijacked": an external BGP neighbor can
send a crafted announcement (e.g. the management /32 with a short AS
path) that diverts management traffic out of the network.

This example audits generated cloud-style networks for the same bug,
prints the synthesized attack announcement, and *replays* it through the
concrete control-plane simulator to demonstrate the diversion hop by hop.

Run:  python examples/hijack_hunt.py [network-index ...]
"""

import sys

from repro import Verifier
from repro.core import properties as P
from repro.core.concrete import counterexample_environment
from repro.gen import build_cloud_network
from repro.sim import DataPlane, Packet, simulate


def audit(index: int) -> None:
    cloud = build_cloud_network(index)
    network = cloud.network
    print(f"\n=== {cloud.name}: {len(network.devices)} routers, "
          f"{network.total_config_lines()} config lines ===")
    verifier = Verifier(network)
    for prefix in cloud.management_prefixes:
        result = verifier.verify(P.Reachability(
            sources="all", dest_prefix_text=prefix))
        if result.holds:
            continue
        cex = result.counterexample
        print(f"  HIJACKABLE management interface {prefix}")
        for ann in cex.announcements:
            print(f"    attack: {ann}")
        # Replay the synthesized environment through the simulator.
        environment = counterexample_environment(cex)
        dataplane = DataPlane(simulate(network, environment))
        packet = Packet(dst_ip=cex.dst_ip)
        for router in network.router_names():
            traces = dataplane.traces(router, packet)
            for trace in traces:
                if trace.disposition == "exited":
                    path = " -> ".join(trace.path)
                    print(f"    replay: {router}: {path} "
                          f"-> EXITS via {trace.exit_peer}")
        return
    print("  no hijackable management interfaces "
          f"(checked {len(cloud.management_prefixes)})")


def main() -> None:
    indices = [int(a) for a in sys.argv[1:]] or [0, 130]
    for index in indices:
        audit(index)


if __name__ == "__main__":
    main()
