#!/usr/bin/env python3
"""End-to-end from configuration *files*: write, load, verify.

Demonstrates the full paper pipeline — Cisco-like config text in a
directory, parsed into the vendor-independent model, verified against the
§5 properties — including the §3 running example's prefix-list/route-map
import policy.

Run:  python examples/config_files_demo.py
"""

import tempfile
from pathlib import Path

from repro import Verifier, load_network
from repro.core import properties as P

R1_CONFIG = """\
hostname R1
!
interface eth0
 ip address 10.0.12.1 255.255.255.252
!
interface eth1
 ip address 10.0.100.1 255.255.255.252
!
interface lan
 ip address 192.168.1.1 255.255.255.0
!
router ospf 1
 network 10.0.0.0 0.255.255.255 area 0
 network 192.168.1.0 0.0.0.255 area 0
 redistribute bgp metric 20
!
router bgp 65001
 redistribute ospf
 neighbor 10.0.100.2 remote-as 65100
 neighbor 10.0.100.2 description upstream
 neighbor 10.0.100.2 route-map IMPORT in
!
ip prefix-list SANE seq 5 deny 192.168.0.0/16 le 32
ip prefix-list SANE seq 10 deny 10.0.0.0/8 le 32
ip prefix-list SANE seq 15 permit 0.0.0.0/0 le 32
!
route-map IMPORT permit 10
 match ip address prefix-list SANE
 set local-preference 120
!
"""

R2_CONFIG = """\
hostname R2
!
interface eth0
 ip address 10.0.12.2 255.255.255.252
!
interface lan
 ip address 192.168.2.1 255.255.255.0
!
router ospf 1
 network 10.0.0.0 0.255.255.255 area 0
 network 192.168.2.0 0.0.0.255 area 0
!
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        (directory / "r1.cfg").write_text(R1_CONFIG)
        (directory / "r2.cfg").write_text(R2_CONFIG)
        network = load_network(directory)
        print(f"loaded: {network}")

        verifier = Verifier(network)

        # Internal subnets reach each other in every environment.
        for prefix in ("192.168.1.0/24", "192.168.2.0/24"):
            result = verifier.verify(P.Reachability(
                sources="all", dest_prefix_text=prefix))
            print(f"  all -> {prefix}: "
                  f"{'holds' if result.holds else 'VIOLATED'} "
                  f"({result.seconds * 1e3:.0f} ms)")

        # The SANE import filter stops internal-space hijacks: even an
        # adversarial upstream announcement cannot divert LAN traffic.
        result = verifier.verify(P.Isolation(
            sources=["R2"], dest_peer="upstream",
            dest_prefix_text="192.168.1.0/24"))
        print(f"  LAN traffic never exits upstream: "
              f"{'holds' if result.holds else 'VIOLATED'}")

        # External space does exit through the upstream when announced.
        result = verifier.verify(
            P.Reachability(sources=["R2"], dest_peer="upstream",
                           dest_prefix_text="8.0.0.0/8"),
            assumptions=[P.announces("upstream", min_length=8)])
        print(f"  8/8 exits via upstream when announced: "
              f"{'holds' if result.holds else 'VIOLATED'}")


if __name__ == "__main__":
    main()
