#!/usr/bin/env python3
"""Fault tolerance and fault-invariance (§5) on two contrasting designs.

Compares a redundant diamond against a linear chain: the diamond keeps
its reachability guarantees under any single link failure and is
fault-invariant; the chain fails both checks, and the verifier names the
cut link.

Run:  python examples/fault_tolerance.py
"""

from repro import NetworkBuilder, Verifier
from repro.core import properties as P


def diamond():
    builder = NetworkBuilder()
    for name in ("S", "L", "R", "D"):
        device = builder.device(name)
        device.enable_ospf(multipath=True)
        device.ospf_network("10.0.0.0/8")
    builder.link("S", "L")
    builder.link("S", "R")
    builder.link("L", "D")
    builder.link("R", "D")
    builder.device("D").interface("hosts", "10.9.0.1/24")
    return builder.build()


def chain():
    builder = NetworkBuilder()
    for name in ("A", "B", "C"):
        device = builder.device(name)
        device.enable_ospf()
        device.ospf_network("10.0.0.0/8")
    builder.link("A", "B")
    builder.link("B", "C")
    builder.device("C").interface("hosts", "10.9.0.1/24")
    return builder.build()


def audit(label: str, network, source: str) -> None:
    print(f"\n=== {label} ===")
    verifier = Verifier(network)
    prop = P.Reachability(sources=[source],
                          dest_prefix_text="10.9.0.0/24")
    for k in (0, 1, 2):
        result = verifier.verify(prop, max_failures=k)
        print(f"  reachable under <= {k} failures: "
              f"{'yes' if result.holds else 'NO'} "
              f"({result.seconds * 1e3:.0f} ms)")
        if result.holds is False and result.counterexample:
            print(f"    breaking failure set: "
                  f"{result.counterexample.failed_links}")
    invariance = verifier.verify_pairwise_fault_invariance(
        k=1, dest_prefix="10.9.0.0/24")
    print(f"  fault-invariant (k=1): "
          f"{'yes' if invariance.holds else 'NO'}")
    if invariance.holds is False:
        print(f"    {invariance.message}")


def main() -> None:
    audit("redundant diamond", diamond(), "S")
    audit("linear chain", chain(), "A")


if __name__ == "__main__":
    main()
