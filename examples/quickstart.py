#!/usr/bin/env python3
"""Quickstart: build a small network, verify properties, read violations.

Run:  python examples/quickstart.py
"""

from repro import NetworkBuilder, Verifier
from repro.core import properties as P


def main() -> None:
    # A three-router OSPF triangle with one host subnet per router.
    builder = NetworkBuilder()
    for name in ("R1", "R2", "R3"):
        device = builder.device(name)
        device.enable_ospf()
        device.ospf_network("10.0.0.0/8")
    builder.link("R1", "R2")
    builder.link("R2", "R3")
    builder.link("R1", "R3", ospf_cost=5)
    builder.device("R1").interface("hosts", "10.1.0.1/24")
    builder.device("R3").interface("hosts", "10.3.0.1/24")
    network = builder.build()

    verifier = Verifier(network)

    # 1. Reachability: every router reaches R3's subnet, in every stable
    #    state the control plane can converge to.
    result = verifier.verify(P.Reachability(
        sources="all", dest_prefix_text="10.3.0.0/24"))
    print("all -> 10.3.0.0/24:", result)

    # 2. Fault tolerance: does that survive any single link failure?
    result = verifier.verify(P.Reachability(
        sources="all", dest_prefix_text="10.3.0.0/24"), max_failures=1)
    print("same, under any 1 failure:", result)

    # 3. A property that fails: nothing routes 172.16/16, so the verifier
    #    produces a counterexample environment and forwarding state.
    result = verifier.verify(P.Reachability(
        sources=["R1"], dest_prefix_text="172.16.0.0/16"))
    print("R1 -> 172.16.0.0/16:", result)
    if result.counterexample:
        print("--- counterexample ---")
        print(result.counterexample.summary())

    # 4. Structural checks: loops and black holes.
    print(verifier.verify(P.NoForwardingLoops(
        dest_prefix_text="10.0.0.0/8")))
    print(verifier.verify(P.NoBlackHoles(dest_prefix_text="10.3.0.0/24")))


if __name__ == "__main__":
    main()
