#!/usr/bin/env python3
"""Batch-audit a fat-tree: one engine run, many properties.

The per-property loop in ``datacenter_audit.py`` re-encodes the network
for every query.  The batch engine groups queries by destination prefix
(and failure bound), encodes each group once, and discharges the
properties incrementally in one solver — optionally spreading groups
over worker processes.  This example audits two rack prefixes with the
five-property battery per rack and compares batch against the naive
loop.

Run:  python examples/batch_audit.py [pods] [workers]
"""

import sys
import time

from repro import Verifier
from repro.core import BatchQuery, properties as P
from repro.gen import build_fattree


def rack_battery(prefix):
    return [
        BatchQuery(P.Reachability(sources="all", dest_prefix_text=prefix),
                   label=f"reach {prefix}"),
        BatchQuery(P.NoBlackHoles(dest_prefix_text=prefix),
                   label=f"no-blackholes {prefix}"),
        BatchQuery(P.NoForwardingLoops(dest_prefix_text=prefix),
                   label=f"no-loops {prefix}"),
        BatchQuery(P.BoundedPathLength(sources="all", bound=8,
                                       dest_prefix_text=prefix),
                   label=f"bounded-8 {prefix}"),
        BatchQuery(P.MultipathConsistency(dest_prefix_text=prefix),
                   label=f"multipath {prefix}"),
    ]


def main() -> None:
    pods = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    tree = build_fattree(pods)
    network = tree.network
    print(f"fat-tree: {pods} pods, {len(network.devices)} routers")

    queries = []
    for tor in (tree.tors[0], tree.tors[-1]):
        queries += rack_battery(tree.tor_subnet(tor))

    verifier = Verifier(network)
    start = time.perf_counter()
    results = verifier.verify_batch(queries, workers=workers)
    batch_s = time.perf_counter() - start

    for result in results:
        status = {True: "HOLDS", False: "VIOLATED",
                  None: "UNKNOWN"}[result.holds]
        print(f"  {result.property_name:32s} {status:9s} "
              f"{result.seconds * 1e3:7.1f} ms "
              f"(encode {result.encode_seconds * 1e3:.0f} ms, "
              f"solve {result.solve_seconds * 1e3:.0f} ms)")

    start = time.perf_counter()
    for query in queries:
        verifier.verify(query.prop)
    naive_s = time.perf_counter() - start

    print(f"\nbatch: {batch_s:.2f} s ({workers} worker(s)) | "
          f"naive loop: {naive_s:.2f} s | "
          f"speedup {naive_s / batch_s:.2f}x")


if __name__ == "__main__":
    main()
