"""Legacy setup shim.

The execution environment has no `wheel` package and no network, so pip
cannot run the PEP 660 editable-build path; with this file present,
`pip install -e . --no-build-isolation` (or plain `pip install -e .` with
isolation disabled via env) falls back to `setup.py develop`, which needs
nothing beyond setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Minesweeper reproduction: SMT-based network configuration "
        "verification (SIGCOMM 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": ["repro-verify=repro.cli:main"],
    },
)
