"""§8.1 violations table: four checks over the cloud-provider suite.

Paper result (152 networks): 67 management-interface hijacks, 29 local
equivalence violations, 24 black holes, 0 fault-invariance violations —
120 violations total.  This bench runs the same four checks over the
(sub)suite selected by REPRO_SCALE and prints the achieved counts next to
the seeded ground truth.
"""

import pytest

from repro.gen import build_cloud_network

from .checks import (
    check_blackholes,
    check_fault_invariance,
    check_local_equivalence,
    check_management_reachability,
)
from .harness import cloud_indices, is_full, print_table


def run_violation_sweep():
    indices = cloud_indices()
    counts = {"hijack": 0, "equivalence": 0, "blackhole": 0,
              "fault-invariance": 0}
    seeded = {"hijack": 0, "equivalence": 0, "blackhole": 0,
              "fault-invariance": 0}
    mismatches = []
    for position, index in enumerate(indices):
        cloud = build_cloud_network(index)
        print(f"  [{position + 1}/{len(indices)}] {cloud.name} "
              f"({len(cloud.network.devices)} routers)", flush=True)
        sample = None if is_full() else 3
        mgmt = check_management_reachability(cloud, sample=sample)
        equiv = check_local_equivalence(
            cloud, pairs_per_role=None if is_full() else 2)
        holes = check_blackholes(cloud)
        fi = check_fault_invariance(cloud)
        counts["hijack"] += mgmt.violated
        counts["equivalence"] += equiv.violated
        counts["blackhole"] += holes.violated
        counts["fault-invariance"] += fi.violated
        seeded["hijack"] += cloud.seeded_hijack
        seeded["equivalence"] += cloud.seeded_equiv_drift
        seeded["blackhole"] += cloud.seeded_blackhole
        for kind, got, want in (
                ("hijack", mgmt.violated, cloud.seeded_hijack),
                ("equivalence", equiv.violated, cloud.seeded_equiv_drift),
                ("blackhole", holes.violated, cloud.seeded_blackhole),
                ("fault-invariance", fi.violated, False)):
            if got != want:
                mismatches.append((cloud.name, kind, got, want))
    return counts, seeded, mismatches, len(indices)


def test_violations_table(capsys):
    counts, seeded, mismatches, n = run_violation_sweep()
    paper = {"hijack": 67, "equivalence": 29, "blackhole": 24,
             "fault-invariance": 0}
    with capsys.disabled():
        print_table(
            f"§8.1 violations over {n} networks "
            f"(paper: 120 over 152)",
            ["check", "violations", "seeded", "paper (152 nets)"],
            [[k, counts[k], seeded.get(k, 0), paper[k]]
             for k in ("hijack", "equivalence", "blackhole",
                       "fault-invariance")])
        if mismatches:
            print("MISMATCHES:", mismatches)
    # The detector must agree exactly with the seeded ground truth.
    assert not mismatches
    assert counts["fault-invariance"] == 0


@pytest.mark.benchmark(group="violations")
def test_benchmark_single_network_all_checks(benchmark):
    """Timing probe: the full four-check battery on one small network."""
    cloud = build_cloud_network(0)

    def battery():
        check_management_reachability(cloud, sample=1)
        check_local_equivalence(cloud, pairs_per_role=1)
        check_blackholes(cloud)
        check_fault_invariance(cloud)

    benchmark.pedantic(battery, rounds=1, iterations=1)
