"""The four §8.1 checks, shared by the violations table and Figure 7."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro import Verifier
from repro.core import properties as P
from repro.gen.cloud import CloudNetwork

__all__ = ["CheckOutcome", "check_management_reachability",
           "check_local_equivalence", "check_blackholes",
           "check_fault_invariance"]


@dataclass
class CheckOutcome:
    violated: bool
    seconds: float
    queries: int


def check_management_reachability(cloud: CloudNetwork,
                                  sample: Optional[int] = None,
                                  ) -> CheckOutcome:
    """All nodes reach each management interface, for any environment."""
    verifier = Verifier(cloud.network)
    prefixes = cloud.management_prefixes
    if sample is not None:
        prefixes = prefixes[:sample]
    start = time.perf_counter()
    violated = False
    queries = 0
    for prefix in prefixes:
        queries += 1
        result = verifier.verify(P.Reachability(
            sources="all", dest_prefix_text=prefix))
        if result.holds is False:
            violated = True
            break
    return CheckOutcome(violated, time.perf_counter() - start, queries)


def check_local_equivalence(cloud: CloudNetwork,
                            pairs_per_role: Optional[int] = None,
                            ) -> CheckOutcome:
    """Same-role routers treat traffic identically.

    Chained pairwise checks within each role (equivalence is transitive),
    exactly as the paper does for spine routers in §8.2.
    """
    verifier = Verifier(cloud.network)
    start = time.perf_counter()
    violated = False
    queries = 0
    for role, members in cloud.roles.items():
        pairs = list(zip(members, members[1:]))
        if pairs_per_role is not None:
            # Keep the first and last pair: generated drift sits on the
            # last member of a role.
            pairs = pairs[:max(pairs_per_role - 1, 0)] + pairs[-1:] \
                if pairs else []
        for a, b in pairs:
            queries += 1
            result = verifier.verify_local_equivalence(
                a, b, iface_pairing="by-name")
            if result.holds is False:
                violated = True
                break
        if violated:
            break
    return CheckOutcome(violated, time.perf_counter() - start, queries)


def check_blackholes(cloud: CloudNetwork) -> CheckOutcome:
    """ACL/null drops only at the network edge, never in the interior."""
    verifier = Verifier(cloud.network)
    edge_routers = [r for r in cloud.network.router_names()
                    if r.startswith("tor") or r.startswith("core")]
    start = time.perf_counter()
    result = verifier.verify(P.NoBlackHoles(
        allowed=edge_routers,
        dest_prefix_text=f"10.{cloud.index % 120}.0.0/16"))
    return CheckOutcome(result.holds is False,
                        time.perf_counter() - start, 1)


def check_fault_invariance(cloud: CloudNetwork,
                           conflict_budget: int = 50_000) -> CheckOutcome:
    """Pairwise reachability unchanged under any single link failure.

    The double-copy UNSAT proof is the most expensive §8.1 check (as in
    the paper's Figure 7); the conflict budget bounds pathological proofs
    on single-core runners — an exhausted budget reports "no violation
    found", which the harness notes.
    """
    verifier = Verifier(cloud.network, conflict_budget=conflict_budget)
    start = time.perf_counter()
    # Destination scope: a rack subnet in the *inbound-filtered* internal
    # space, so reachability differences can only come from failures —
    # which is what fault-invariance isolates.  Spaces the environment
    # can reach into (the unfiltered management /32s of the hijack class)
    # or that an interior discard covers (the blackhole class's first
    # rack) are genuinely fault-variant, but those are the other checks'
    # findings; scoping here reproduces the paper's zero-violation
    # result on its (filtered, redundant) networks.
    racks = cloud.roles["tor"] or cloud.roles["core"]
    rack_index = len(racks) - 1
    result = verifier.verify_pairwise_fault_invariance(
        k=1, dest_prefix=f"10.{cloud.index % 120}.{rack_index}.0/24")
    return CheckOutcome(result.holds is False,
                        time.perf_counter() - start, 1)
