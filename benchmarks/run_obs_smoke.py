"""Fast observability smoke check for `make check` / CI (< 30 s).

Runs a traced verify-batch over a small fat-tree and asserts the
telemetry invariants the tracing layer promises:

* the trace is non-empty and valid Chrome trace-event JSON (loadable
  in Perfetto), with every batch lane present;
* per-result encode/solve second fields agree with the corresponding
  span totals within 5% (they are views over the same spans);
* per-phase self times sum to (at most, and close to) traced wall
  time on every lane;
* the run ledger records the runs, ``repro history compare`` exits 0
  on two identical recorded runs, and deterministically exits 1 on a
  seeded CNF-size regression (count-based metrics, no timing
  dependence);
* the ``--metrics-out`` Prometheus exposition parses strictly;
* running with tracing disabled is not measurably slower (guard set
  at 25% for CI noise on a sub-second workload; the <2% claim is
  meaningful only at real workload sizes).  The traced side of the
  guard includes the ledger append, so recording overhead is bounded
  by the same band.

Writes ``benchmarks/out/obs_smoke_trace.json`` and
``benchmarks/out/obs_smoke_ledger.sqlite`` (uploaded as CI artifacts)
and ``benchmarks/out/BENCH_obs.json``.  ``--pods 4`` reproduces the
20-router acceptance configuration (~1 min on a laptop).
"""

import argparse
import json
import os
import sys
import time

from repro import obs
from repro.cli import main as repro_main
from repro.core import BatchQuery, properties as P, verify_batch
from repro.gen import build_fattree
from repro.obs.ledger import RunLedger, build_record
from repro.obs.promexport import parse_exposition, write_prometheus

from benchmarks.harness import emit_metrics, out_path


def _queries(tree, max_reach=4):
    queries = [BatchQuery(P.Reachability(dest_prefix_text=tree.tor_subnet(t)),
                          label=f"reach-{t}")
               for t in tree.tors[:max_reach]]
    queries.append(BatchQuery(P.NoForwardingLoops(), label="loops"))
    return queries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=2,
                        help="fat-tree pods (4 = the 20-router "
                             "acceptance configuration)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--trace-out", default=None,
                        help="trace artifact path (default: "
                             "benchmarks/out/obs_smoke_trace.json)")
    args = parser.parse_args(argv)
    if args.trace_out is None:
        args.trace_out = out_path("obs_smoke_trace.json")

    tree = build_fattree(args.pods)
    network = tree.network
    queries = _queries(tree)

    ledger_path = out_path("obs_smoke_ledger.sqlite")
    if os.path.exists(ledger_path):
        os.remove(ledger_path)

    # Untraced baseline (spans no-op; results still carry span-derived
    # timing through throwaway local tracers).
    start = time.perf_counter()
    baseline = verify_batch(network, queries, workers=args.workers)
    untraced_s = time.perf_counter() - start

    # Traced run, timed INCLUDING the ledger append so the overhead
    # guard below bounds recording cost too.
    tracer = obs.Tracer()
    start = time.perf_counter()
    with obs.use(tracer):
        results = verify_batch(network, queries, workers=args.workers)
    record = build_record("verify-batch", ["obs-smoke"],
                          network=network, results=results,
                          tracer=tracer)
    with RunLedger(ledger_path) as ledger:
        ledger.append(record)
    traced_s = time.perf_counter() - start

    failures = []

    def check(ok: bool, what: str) -> None:
        print(("ok  " if ok else "FAIL") + f"  {what}")
        if not ok:
            failures.append(what)

    check([r.holds for r in results] == [r.holds for r in baseline],
          "traced and untraced verdicts identical")
    check(len(tracer.spans) > 0, f"trace non-empty ({len(tracer.spans)} "
          "spans)")

    # --- Chrome trace validity --------------------------------------
    obs.export.write_trace(tracer, args.trace_out)
    with open(args.trace_out) as handle:
        doc = json.load(handle)
    events = doc.get("traceEvents", [])
    complete = [e for e in events if e.get("ph") == "X"]
    check(len(complete) == len(tracer.spans),
          f"one complete event per span ({len(complete)})")
    check(all(set(e) >= {"name", "ph", "ts", "dur", "pid", "tid"}
              for e in complete), "trace events carry required keys")
    lanes = {e["args"]["name"] for e in events
             if e.get("ph") == "M" and e.get("name") == "thread_name"}
    group_spans = [s for s in tracer.spans if s["name"] == "batch.group"]
    check(len(group_spans) > 0 and
          all((s.get("lane") or "main") in lanes for s in tracer.spans),
          f"every lane named in metadata ({sorted(lanes)})")

    # --- result stats are views over the spans ----------------------
    def span_total(name: str) -> float:
        return sum(s["duration"] for s in tracer.spans
                   if s["name"] == name)

    encode_spans = (span_total("verify.encode")
                    + span_total("verify.property"))
    encode_results = sum(r.encode_seconds for r in results)
    solve_spans = span_total("verify.solve")
    solve_results = sum(r.solve_seconds for r in results)
    enc_err = abs(encode_spans - encode_results) / max(encode_spans, 1e-9)
    slv_err = abs(solve_spans - solve_results) / max(solve_spans, 1e-9)
    check(enc_err < 0.05,
          f"encode: spans {encode_spans * 1e3:.1f}ms vs results "
          f"{encode_results * 1e3:.1f}ms ({enc_err * 100:.2f}% off)")
    check(slv_err < 0.05,
          f"solve: spans {solve_spans * 1e3:.1f}ms vs results "
          f"{solve_results * 1e3:.1f}ms ({slv_err * 100:.2f}% off)")
    for r in results:
        check(abs(r.encode_seconds - (r.encode_shared_seconds
                                      + r.encode_query_seconds)) < 1e-9,
              f"{r.property_name}: encode = shared + query")

    # --- phase totals vs wall time ----------------------------------
    # Self times (duration minus direct children) partition each lane's
    # busy time, so per lane they cannot exceed that lane's wall span
    # and should cover most of it (the remainder is untraced glue).
    child = {}
    for s in tracer.spans:
        if s["parent_id"]:
            child[s["parent_id"]] = (child.get(s["parent_id"], 0.0)
                                     + s["duration"])
    by_lane = {}
    for s in tracer.spans:
        by_lane.setdefault(s.get("lane") or "main", []).append(s)
    for lane, spans in sorted(by_lane.items()):
        self_total = sum(max(0.0, s["duration"]
                             - child.get(s["span_id"], 0.0))
                         for s in spans)
        wall = (max(s["start"] + s["duration"] for s in spans)
                - min(s["start"] for s in spans))
        check(self_total <= wall * 1.02,
              f"lane {lane!r}: self {self_total * 1e3:.1f}ms <= wall "
              f"{wall * 1e3:.1f}ms")

    # --- run ledger + history compare --------------------------------
    # Record the untraced baseline as a second run: counts (vars,
    # clauses, conflicts) are deterministic for the fixed workload, so
    # the two records must compare clean, and a seeded 1.5x clause
    # inflation must be detected — no timing dependence either way.
    with RunLedger(ledger_path) as ledger:
        ledger.append(build_record("verify-batch", ["obs-smoke"],
                                   network=network, results=baseline))
        seeded = build_record("verify-batch", ["obs-smoke", "seeded"],
                              network=network, results=results)
        for q in seeded.queries:
            q["clauses"] = int(q["clauses"] * 1.5)
        ledger.append(seeded)
        recorded = len(ledger)
    check(recorded == 3, f"ledger recorded {recorded} run(s)")

    identical_rc = repro_main(["history", "--ledger", ledger_path,
                               "compare", "-3", "-2"])
    check(identical_rc == 0,
          f"history compare of identical runs exits 0 (got "
          f"{identical_rc})")
    seeded_rc = repro_main(["history", "--ledger", ledger_path,
                            "compare", "-3", "-1"])
    check(seeded_rc == 1,
          f"history compare flags the seeded 1.5x clause growth "
          f"(exit {seeded_rc})")

    # --- Prometheus exposition ---------------------------------------
    prom_path = out_path("obs_smoke_metrics.prom")
    write_prometheus(tracer.metrics, prom_path)
    with open(prom_path) as handle:
        try:
            families = parse_exposition(handle.read())
            prom_ok = len(families) > 0
        except ValueError as exc:
            print(f"  exposition invalid: {exc}", file=sys.stderr)
            prom_ok = False
    check(prom_ok, f"Prometheus exposition parses "
          f"({len(families) if prom_ok else 0} families)")

    # --- overhead ----------------------------------------------------
    overhead = (traced_s - untraced_s) / untraced_s
    check(overhead < 0.25,
          f"tracing+ledger overhead {overhead * 100:+.1f}% "
          f"(untraced {untraced_s:.2f}s, traced {traced_s:.2f}s)")

    emit_metrics("obs", {
        "pods": args.pods,
        "routers": len(network.devices),
        "queries": len(queries),
        "workers": args.workers,
        "untraced_seconds": round(untraced_s, 4),
        "traced_seconds": round(traced_s, 4),
        "overhead_pct": round(overhead * 100, 2),
        "spans": len(tracer.spans),
        "ledger_runs": recorded,
        "history_compare_identical": 1.0 if identical_rc == 0 else 0.0,
        "history_compare_seeded": 1.0 if seeded_rc == 1 else 0.0,
        "prom_families": len(families) if prom_ok else 0,
    }, tracer=tracer)

    if failures:
        print(f"{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("obs smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
