"""Batch engine benchmark: shared encodings vs. the naive per-query loop.

The paper's workloads are audits — many properties over the same network,
mostly against a handful of destination prefixes (§8.1 runs four checks
per network over 152 networks; §8.2 fans reachability out per prefix).
The batch engine encodes each (prefix, failure-bound) group once and
discharges its properties incrementally under assumptions; this benchmark
measures that saving against the naive loop that calls
``Verifier.verify`` once per query, and asserts the two produce
bit-identical verdicts.

Acceptance target: >= 2x wall-clock speedup on a >= 20-router fat-tree
with >= 8 queries sharing destination prefixes.
"""

import time


from repro import Verifier
from repro.core import BatchQuery, properties as P, verify_batch
from repro.gen import build_cloud_network, build_fattree

from .harness import print_table


def _audit_queries(prefixes):
    """The per-prefix audit battery: 5 properties x each prefix."""
    queries = []
    for prefix in prefixes:
        queries += [
            BatchQuery(P.Reachability(sources="all",
                                      dest_prefix_text=prefix),
                       label=f"reach@{prefix}"),
            BatchQuery(P.NoBlackHoles(dest_prefix_text=prefix),
                       label=f"blackholes@{prefix}"),
            BatchQuery(P.NoForwardingLoops(dest_prefix_text=prefix),
                       label=f"loops@{prefix}"),
            BatchQuery(P.BoundedPathLength(sources="all", bound=8,
                                           dest_prefix_text=prefix),
                       label=f"bounded@{prefix}"),
            BatchQuery(P.MultipathConsistency(dest_prefix_text=prefix),
                       label=f"multipath@{prefix}"),
        ]
    return queries


def _naive_loop(network, queries):
    verifier = Verifier(network)
    out = []
    for query in queries:
        out.append(verifier.verify(query.prop,
                                   max_failures=query.max_failures,
                                   assumptions=list(query.assumptions)))
    return out


def _assert_identical(queries, naive, batched):
    assert len(naive) == len(batched) == len(queries)
    for query, n, b in zip(queries, naive, batched):
        assert n.holds == b.holds, query.name()
        assert (n.counterexample is None) == (b.counterexample is None), \
            query.name()


def _report(title, n_routers, queries, naive_s, batch_s, results):
    speedup = naive_s / batch_s if batch_s else float("inf")
    holding = sum(1 for r in results if r.holds is True)
    print_table(title,
                ["routers", "queries", "hold", "naive s",
                 "batch s", "speedup"],
                [[n_routers, len(queries), holding,
                  f"{naive_s:.2f}", f"{batch_s:.2f}",
                  f"{speedup:.2f}x"]])
    return speedup


def test_batch_speedup_fattree():
    """>= 2x over the naive loop on a 20-router fat-tree, 10 queries."""
    tree = build_fattree(4)
    network = tree.network
    assert len(network.devices) >= 20
    prefixes = [tree.tor_subnet(tree.tors[0]),
                tree.tor_subnet(tree.tors[-1])]
    queries = _audit_queries(prefixes)
    assert len(queries) >= 8

    start = time.perf_counter()
    naive = _naive_loop(network, queries)
    naive_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = verify_batch(network, queries)
    batch_s = time.perf_counter() - start

    _assert_identical(queries, naive, batched)
    speedup = _report("Batch engine vs naive loop (fat-tree, 4 pods)",
                      len(network.devices), queries,
                      naive_s, batch_s, batched)
    assert speedup >= 2.0, f"expected >=2x speedup, got {speedup:.2f}x"


def test_batch_matches_naive_cloud():
    """Verdict identity (and the measured saving) on a generated cloud
    network with seeded violations, including parallel workers."""
    cloud = build_cloud_network(97)  # black-hole class
    network = cloud.network
    # The seeded hole discards a sub-prefix of 10.<index>.0.0/16; audit
    # that prefix plus a management loopback.
    prefixes = [f"10.{cloud.index % 120}.0.0/16"]
    prefixes += cloud.management_prefixes[:1]
    queries = _audit_queries(prefixes)

    start = time.perf_counter()
    naive = _naive_loop(network, queries)
    naive_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = verify_batch(network, queries)
    batch_s = time.perf_counter() - start

    _assert_identical(queries, naive, batched)
    # The seeded black hole must actually be found by both paths.
    assert any(r.holds is False for r in batched)

    parallel = verify_batch(network, queries, workers=2)
    _assert_identical(queries, batched, parallel)

    _report(f"Batch engine vs naive loop ({cloud.name})",
            len(network.devices), queries, naive_s, batch_s, batched)


if __name__ == "__main__":  # pragma: no cover
    test_batch_speedup_fattree()
    test_batch_matches_naive_cloud()
