"""Figure 7: verification time vs. lines of configuration (four panels).

The paper plots per-network verification time for management-interface
reachability, local equivalence, black holes and fault-invariance over the
152 real networks sorted by total configuration lines (2–60 ms, 5–400 ms,
<1 s, <1.5 s respectively on Z3).  We regenerate the same four series over
the generated suite; absolute times scale with the pure-Python solver, but
the orderings (equivalence > reachability; fault-invariance most
expensive) and the growth with configuration size reproduce.
"""

import pytest

from repro.gen import build_cloud_network

from .checks import (
    check_blackholes,
    check_fault_invariance,
    check_local_equivalence,
    check_management_reachability,
)
from .harness import cloud_indices, is_full, print_table


def collect_series():
    rows = []
    for index in cloud_indices():
        cloud = build_cloud_network(index)
        print(f"  fig7: {cloud.name}", flush=True)
        lines = cloud.network.total_config_lines()
        mgmt = check_management_reachability(
            cloud, sample=None if is_full() else 1)
        equiv = check_local_equivalence(cloud, pairs_per_role=1)
        holes = check_blackholes(cloud)
        fi = check_fault_invariance(cloud)
        rows.append((cloud.name, lines,
                     round(mgmt.seconds * 1e3, 1),
                     round(equiv.seconds * 1e3, 1),
                     round(holes.seconds * 1e3, 1),
                     round(fi.seconds * 1e3, 1)))
    rows.sort(key=lambda r: r[1])
    return rows


def test_fig7_series(capsys):
    rows = collect_series()
    with capsys.disabled():
        print_table(
            "Figure 7: per-network check time (ms) by config lines",
            ["network", "config lines", "mgmt-reach", "local-equiv",
             "blackholes", "fault-invariance"],
            rows)
    # Sanity on the figure's shape: all four checks complete, and time
    # correlates with size (largest network slower than smallest for the
    # blackhole panel, which is a single query per network).
    assert rows
    if len(rows) >= 4:
        small = rows[0]
        large = rows[-1]
        assert large[4] >= small[4]


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("index", [0, 100, 130])
def test_benchmark_blackhole_check(benchmark, index):
    cloud = build_cloud_network(index)
    benchmark.pedantic(lambda: check_blackholes(cloud),
                       rounds=1, iterations=1)
