"""Fast batch-engine smoke check for `make check` / CI (< 30 s).

Runs the per-prefix audit battery from ``test_bench_batch`` on a small
fat-tree, asserts that batch results are identical to the naive
per-query loop (serial and with workers), and prints the measured
speedup.  Exits non-zero on any mismatch.

The full acceptance benchmark (20-router fat-tree, minutes of wall
clock) lives in ``benchmarks/test_bench_batch.py``.
"""

import sys
import time

from repro.core import verify_batch
from repro.gen import build_fattree

from benchmarks.harness import emit_metrics
from benchmarks.test_bench_batch import (
    _assert_identical,
    _audit_queries,
    _naive_loop,
    _report,
)


def main() -> int:
    tree = build_fattree(2)
    network = tree.network
    prefixes = [tree.tor_subnet(t) for t in tree.tors]
    queries = _audit_queries(prefixes)

    start = time.perf_counter()
    naive = _naive_loop(network, queries)
    naive_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = verify_batch(network, queries)
    batch_s = time.perf_counter() - start

    _assert_identical(queries, naive, batched)
    parallel = verify_batch(network, queries, workers=2)
    _assert_identical(queries, batched, parallel)

    speedup = _report("Batch smoke (fat-tree, 2 pods)",
                      len(network.devices), queries, naive_s, batch_s,
                      batched)
    emit_metrics("batch", {
        "pods": 2,
        "routers": len(network.devices),
        "queries": len(queries),
        "naive_seconds": round(naive_s, 4),
        "batch_seconds": round(batch_s, 4),
        "speedup": round(speedup, 4),
    })
    if not all(r.holds is True for r in batched):
        print("unexpected violation in smoke network", file=sys.stderr)
        return 1
    print("batch smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
