"""Shared benchmark utilities.

The harness reproduces every table and figure of the paper's §8.  Scale is
controlled by ``REPRO_SCALE``:

* ``quick`` (default) — a representative subset sized for minutes of wall
  clock on a laptop-grade pure-Python solver;
* ``full`` — the complete workloads (all 152 cloud networks, larger
  fat-trees); expect hours.

Every benchmark prints the paper-style rows it regenerates, so running
``python benchmarks/run_all.py`` rebuilds the data behind EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Sequence

__all__ = ["SCALE", "OUT_DIR", "is_full", "cloud_indices",
           "fattree_pods", "out_path", "print_table", "timed",
           "emit_metrics"]

SCALE = os.environ.get("REPRO_SCALE", "quick")

#: Where smoke runs drop their artifacts (gitignored; uploaded by CI).
OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")


def out_path(filename: str) -> str:
    """Absolute path of an artifact in ``benchmarks/out/`` (created)."""
    os.makedirs(OUT_DIR, exist_ok=True)
    return os.path.join(OUT_DIR, filename)


def is_full() -> bool:
    return SCALE == "full"


def cloud_indices() -> List[int]:
    """Which of the 152 cloud networks to analyze."""
    if is_full():
        return list(range(152))
    # Quick subset: several networks per bug class — hijack (0..66),
    # drift (67..95), hole (96..119), clean (120..151) — restricted to
    # <= 9 routers so the four-check battery (fault-invariance included)
    # stays in pure-Python-solver range.
    return [0, 1, 3, 4, 5, 11,          # hijack class
            68, 69, 71, 75,             # equivalence-drift class
            97, 100, 101, 104,          # black-hole class
            120, 121, 127, 130]         # clean


def fattree_pods() -> List[int]:
    """Figure 8 x-axis (paper: 2..18 pods; scaled for pure Python)."""
    return [2, 4, 6] if is_full() else [2, 4]


def print_table(title: str, header: Sequence[str],
                rows: Iterable[Sequence]) -> None:
    print(f"\n== {title} ==")
    print(" | ".join(str(h) for h in header))
    for row in rows:
        print(" | ".join(str(c) for c in row))


@contextmanager
def timed():
    """Context manager yielding a mutable [seconds] cell."""
    cell = [0.0]
    start = time.perf_counter()
    try:
        yield cell
    finally:
        cell[0] = time.perf_counter() - start


def emit_metrics(name: str, payload: Dict[str, Any],
                 tracer=None) -> str:
    """Write a ``BENCH_<name>.json`` metrics file to ``benchmarks/out/``.

    ``payload`` carries the benchmark's own numbers (timings, counts);
    with a ``tracer``, its metrics snapshot and a per-phase duration
    summary ride along under ``"metrics"``/``"phases"`` so runs are
    mechanically comparable across commits.
    """
    doc: Dict[str, Any] = {"benchmark": name, "scale": SCALE}
    doc.update(payload)
    if tracer is not None:
        phases: Dict[str, Dict[str, float]] = {}
        for span in tracer.spans:
            row = phases.setdefault(span["name"],
                                    {"count": 0, "total_seconds": 0.0})
            row["count"] += 1
            row["total_seconds"] += span["duration"]
        doc["phases"] = phases
        doc["metrics"] = tracer.metrics.snapshot()
    path = out_path(f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
    print(f"metrics written to {path}")
    return path
