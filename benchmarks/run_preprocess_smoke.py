"""Preprocessing ablation smoke check for `make check` / CI.

Runs the same verification queries over a fat-tree twice — with the
SatELite-style CNF preprocessing pipeline enabled and disabled — and
asserts the contract the pipeline promises:

* verdicts are identical with preprocessing on and off (the frozen
  protocol plus the reconstruction stack make simplification fully
  transparent to the verifier);
* on the shared network encoding the pipeline removes at least 20% of
  the clauses (the acceptance floor; measured >35% on fat-trees);
* preprocessing actually ran (eliminated variables, subsumed clauses).

Writes ``benchmarks/out/BENCH_preprocess.json`` with the clause-reduction and
solve-time ratios that ``compare_bench.py`` gates on.  ``--pods 4``
(the default) is the 20-router acceptance configuration; ``--pods 2``
keeps ``make check`` fast.
"""

import argparse
import sys
import time

from repro import obs
from repro.core import EncoderOptions, Verifier, properties as P
from repro.core.encoder import NetworkEncoder
from repro.gen import build_fattree
from repro.smt import Solver

from benchmarks.harness import emit_metrics, print_table


def _queries(tree):
    return [P.Reachability(sources="all",
                           dest_prefix_text=tree.tor_subnet(t))
            for t in (tree.tors[0], tree.tors[-1])]


def _verify_all(network, queries, preprocess):
    verifier = Verifier(network,
                        options=EncoderOptions(preprocess=preprocess))
    verdicts = []
    start = time.perf_counter()
    for prop in queries:
        verdicts.append(verifier.verify(prop).holds)
    return verdicts, time.perf_counter() - start


def _clause_reduction(tree, prop):
    """Forced pipeline run over the shared network encoding."""
    enc = NetworkEncoder(tree.network, EncoderOptions()).encode(
        dst_prefix=prop.dst_prefix())
    solver = Solver()
    solver.add(*enc.constraints, label="network")
    delta = solver.run_preprocess()
    before = delta["live_clauses_before"]
    after = delta["live_clauses_after"]
    reduction = 100.0 * (before - after) / before if before else 0.0
    return reduction, delta


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=4,
                        help="fat-tree pods (4 = the 20-router "
                             "acceptance configuration)")
    args = parser.parse_args(argv)

    tree = build_fattree(args.pods)
    network = tree.network
    queries = _queries(tree)

    failures = []

    def check(ok: bool, what: str) -> None:
        print(("ok  " if ok else "FAIL") + f"  {what}")
        if not ok:
            failures.append(what)

    off_verdicts, off_s = _verify_all(network, queries, preprocess=False)
    tracer = obs.Tracer()
    with obs.use(tracer):
        on_verdicts, on_s = _verify_all(network, queries,
                                        preprocess=True)

    check(on_verdicts == off_verdicts,
          f"verdicts identical with preprocessing on/off "
          f"({on_verdicts})")
    check(all(v is True for v in on_verdicts),
          "fat-tree reachability holds")

    reduction, delta = _clause_reduction(tree, queries[0])
    check(reduction >= 20.0,
          f"clause reduction {reduction:.1f}% >= 20% "
          f"({delta['live_clauses_before']} -> "
          f"{delta['live_clauses_after']})")
    check(delta["pp_eliminated_vars"] > 0, "variables were eliminated")
    check(delta["pp_subsumed"] + delta["pp_strengthened"] > 0,
          "clauses were subsumed or strengthened")

    solve_ratio = off_s / on_s if on_s else float("inf")
    print_table(f"Preprocessing ablation (fat-tree, {args.pods} pods)",
                ["routers", "queries", "off s", "on s", "ratio",
                 "reduction"],
                [[len(network.devices), len(queries),
                  f"{off_s:.2f}", f"{on_s:.2f}",
                  f"{solve_ratio:.2f}x", f"{reduction:.1f}%"]])

    emit_metrics("preprocess", {
        "pods": args.pods,
        "routers": len(network.devices),
        "queries": len(queries),
        "off_seconds": round(off_s, 4),
        "on_seconds": round(on_s, 4),
        "solve_ratio": round(solve_ratio, 4),
        "clause_reduction_pct": round(reduction, 2),
        "live_clauses_before": delta["live_clauses_before"],
        "live_clauses_after": delta["live_clauses_after"],
        "eliminated_vars": delta["pp_eliminated_vars"],
        "pure_literals": delta["pp_pure_literals"],
        "subsumed": delta["pp_subsumed"],
        "strengthened": delta["pp_strengthened"],
    }, tracer=tracer)

    if failures:
        print(f"{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("preprocess smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
