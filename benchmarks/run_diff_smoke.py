"""Differential-verification smoke check for `make check` / CI.

Exercises the soundness contract of ``repro diff`` on three workloads:

* **Fat-tree single edit** — renumber one ToR's rack (interface address
  and BGP announcement) and diff the trees over per-rack reachability
  and loop queries.  Hard-gated in ``compare_bench.py``: the diff's NEW
  verdict column (the one the cache can influence) must be
  bit-identical to an independent full verification of the NEW tree
  (``verdict_match``), only the edited rack's queries may be re-solved
  (``reverify_exact``), and the single expected reachability flip must
  surface as a new violation with a counterexample (``flip_match``).
* **Fat-tree policy edit** — one ToR carries an import policy whose
  deny clause matches only its own rack; the edit narrows that
  clause's prefix-list.  The clause is *hot* only for the edited
  rack's destination, so the dataflow-tightened cones must re-solve
  exactly that rack's two queries (``policy_reverify_exact``) — under
  the pre-dataflow all-route-maps widening this edit re-solved every
  query, loop queries included.  Verdict identity is hard-gated
  (``policy_verdict_match``) and the edit must flip nothing (the rack
  is connected on the ToR itself; AD beats BGP).
* **Cloud corpus** — the same edit/diff/replay cycle on a generated
  cloud network (clean class, index 120): verdict identity is hard-gated
  (``cloud_verdict_match``) and at least one verdict must replay.

The edited rack gets a reachability query but no loop query: the edit
de-originates its /24, and proving loop-freedom for a prefix with no
routes anywhere is the solver's worst case (minutes at 4 pods) — a
hardness benchmark, not a differential one.  The other racks' loop
queries still exercise replay under the structural (widened) cone.

The warm-cache speedup against a fresh full verification of the NEW
tree (the steady-state CI scenario) is timing-derived and warn-only.

Writes ``benchmarks/out/BENCH_diff.json``.  ``--pods 2`` (the default)
keeps ``make check`` fast; CI runs ``--pods 4``.
"""

import argparse
import os
import sys
import tempfile
import time

from repro.core import BatchQuery, properties as P, verify_batch
from repro.diff import VerdictCache, diff_trees
from repro.gen import build_cloud_network, build_fattree
from repro.lang.writer import write_config
from repro.net import ip as iplib, load_network
from repro.net.policy import (
    DENY,
    PERMIT,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)

from benchmarks.harness import emit_metrics, print_table


def write_tree(network, directory, rename=None):
    """Write a config tree; ``rename=(device, old, new)`` edits one
    device's text on the way out."""
    os.makedirs(directory, exist_ok=True)
    for name, dev in network.devices.items():
        text = write_config(dev)
        if rename and name == rename[0]:
            text = text.replace(rename[1], rename[2])
        with open(os.path.join(directory, f"{name}.cfg"), "w") as fh:
            fh.write(text)


def rack_queries(subnets, skip_loops=()):
    """Per-rack reachability + loop-freedom at the rack /24.

    ``skip_loops`` names racks whose loop query is omitted (see the
    module docstring: loop-freedom for a de-originated prefix is a
    solver worst case, not a differential scenario)."""
    queries = []
    for label, subnet in subnets:
        queries.append(
            BatchQuery(
                prop=P.Reachability(sources="all", dest_prefix_text=subnet),
                label=f"reach-{label}",
            )
        )
        if label not in skip_loops:
            queries.append(
                BatchQuery(
                    prop=P.NoForwardingLoops(dest_prefix_text=subnet),
                    label=f"loops-{label}",
                )
            )
    return queries


def run_scenario(network, edited_device, old_text, new_text, subnets,
                 workers, skip_loops=None):
    """Write trees, run cold + warm diffs, time a fresh NEW verify.

    Returns (cold_report, warm_report, warm_seconds, fresh_new_seconds,
    match) with ``match`` the verdict identity of the cold diff's NEW
    column against an independent full verification of the NEW tree.
    That column is the one the cache can influence (it mixes replayed
    and re-solved verdicts); the OLD column of a cold diff is itself a
    full verification against an empty cache, so re-solving it again
    would compare a fresh solve with a fresh solve.

    ``skip_loops`` defaults to the edited device (the renumber
    scenarios de-originate its /24 — see the module docstring); pass
    an empty set when the edit keeps every prefix originated.
    """
    if skip_loops is None:
        skip_loops = {edited_device}
    queries = rack_queries(subnets, skip_loops=skip_loops)
    with tempfile.TemporaryDirectory() as tmp:
        old_dir = os.path.join(tmp, "old")
        new_dir = os.path.join(tmp, "new")
        write_tree(network, old_dir)
        write_tree(
            network, new_dir, rename=(edited_device, old_text, new_text)
        )

        cache = VerdictCache()
        cold = diff_trees(
            old_dir, new_dir, queries, workers=workers, cache=cache
        )
        warm = diff_trees(
            old_dir, new_dir, queries, workers=workers, cache=cache
        )

        start = time.perf_counter()
        new_fresh = verify_batch(
            load_network(new_dir), queries, workers=workers
        )
        fresh_new_s = time.perf_counter() - start

        match = all(
            q.new.holds == fresh.holds
            for q, fresh in zip(cold.queries, new_fresh)
        )
    return cold, warm, warm.seconds, fresh_new_s, match


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pods",
        type=int,
        default=2,
        help="fat-tree pods (2 keeps `make check` fast; CI uses 4)",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--cloud-index",
        type=int,
        default=120,
        help="cloud-suite network for the corpus scenario "
        "(120 = first clean-class network)",
    )
    args = parser.parse_args(argv)

    failures = []

    def check(ok: bool, what: str) -> None:
        print(("ok  " if ok else "FAIL") + f"  {what}")
        if not ok:
            failures.append(what)

    # --- fat-tree single-edit scenario -------------------------------
    tree = build_fattree(args.pods)
    edited = tree.tors[0]
    subnets = [(t, tree.tor_subnet(t)) for t in tree.tors]
    # "10.0.0.0/24" -> the "10.0.0." octet prefix the edit rewrites
    old_rack = tree.tor_subnet(edited).split("/")[0].rsplit(".", 1)[0] + "."
    cold, warm, warm_s, fresh_new_s, ft_match = run_scenario(
        tree.network, edited, old_rack, "10.250.0.", subnets, args.workers
    )

    expected = {f"reach-{edited}"}
    reverify_exact = (
        set(cold.reverified()) == expected and not warm.reverified()
    )
    flips = cold.new_violations
    flip_match = (
        len(flips) == 1
        and flips[0].name == f"reach-{edited}"
        and flips[0].new.counterexample is not None
        and cold.exit_code == 1
        and warm.exit_code == 1
    )
    check(ft_match, "fat-tree: diff verdicts identical to full verification")
    check(
        reverify_exact,
        f"fat-tree: re-solved exactly {sorted(expected)} "
        f"(cold got {sorted(cold.reverified())}, warm "
        f"{len(warm.reverified())})",
    )
    check(
        flip_match,
        "fat-tree: rack renumber surfaces one reachability flip "
        "with a counterexample",
    )
    speedup = fresh_new_s / warm_s if warm_s else float("inf")

    # --- fat-tree policy-edit scenario -------------------------------
    ptree = build_fattree(args.pods)
    ptor = ptree.tors[0]
    rack = ptree.tor_subnet(ptor)
    rack_net, rack_len = iplib.parse_prefix(rack)
    dev = ptree.network.devices[ptor]
    dev.prefix_lists["OWN_RACK"] = PrefixList(
        "OWN_RACK", (PrefixListEntry(PERMIT, rack_net, rack_len),)
    )
    dev.route_maps["RACK_POLICY"] = RouteMap(
        "RACK_POLICY",
        (
            RouteMapClause(10, DENY, match_prefix_list="OWN_RACK"),
            RouteMapClause(20, PERMIT),
        ),
    )
    dev.bgp.neighbors[0].route_map_in = "RACK_POLICY"
    pcold, pwarm, _, _, policy_match = run_scenario(
        ptree.network,
        ptor,
        f"permit {rack}",
        f"permit {iplib.format_prefix(rack_net, rack_len + 1)}",
        [(t, ptree.tor_subnet(t)) for t in ptree.tors],
        args.workers,
        skip_loops=frozenset(),
    )
    policy_expected = {f"reach-{ptor}", f"loops-{ptor}"}
    policy_reverify_exact = (
        set(pcold.reverified()) == policy_expected
        and not pwarm.reverified()
    )
    check(
        policy_match,
        "fat-tree policy: diff verdicts identical to full verification",
    )
    check(
        policy_reverify_exact,
        f"fat-tree policy: re-solved exactly {sorted(policy_expected)} "
        f"(cold got {sorted(pcold.reverified())}, warm "
        f"{len(pwarm.reverified())})",
    )
    check(
        not pcold.new_violations and pcold.exit_code == 0,
        "fat-tree policy: narrowing the own-rack deny flips nothing",
    )

    # --- cloud-corpus scenario ---------------------------------------
    cloud = build_cloud_network(args.cloud_index)
    cloud_subnets = []
    for name, dev in sorted(cloud.network.devices.items()):
        for iface in dev.interfaces.values():
            if iface.name == "rack" and iface.address:
                cloud_subnets.append(
                    (name, iplib.format_prefix(*iface.subnet))
                )
    cloud_dev, cloud_subnet = cloud_subnets[-1]
    cloud_rack = cloud_subnet.split("/")[0].rsplit(".", 1)[0] + "."
    cloud_cold, cloud_warm, _, _, cloud_match = run_scenario(
        cloud.network,
        cloud_dev,
        cloud_rack,
        "10.77.0.",
        cloud_subnets,
        args.workers,
    )
    check(
        cloud_match,
        f"cloud {cloud.name}: diff verdicts identical to full verification",
    )
    cloud_replayed = len(cloud_cold.replayed())
    check(
        cloud_replayed > 0 and not cloud_warm.reverified(),
        f"cloud {cloud.name}: cache replays verdicts "
        f"({cloud_replayed} cold, all warm)",
    )

    print_table(
        f"diff smoke (fat-tree {args.pods} pods + {cloud.name})",
        ["queries", "re-solved", "replayed", "warm s", "fresh s", "speedup"],
        [
            [
                len(cold.queries),
                len(cold.reverified()),
                len(cold.replayed()),
                f"{warm_s:.2f}",
                f"{fresh_new_s:.2f}",
                f"{speedup:.1f}x",
            ]
        ],
    )

    emit_metrics(
        "diff",
        {
            "pods": args.pods,
            "cloud_index": args.cloud_index,
            "queries": len(cold.queries),
            "workers": args.workers,
            "verdict_match": 1.0 if ft_match else 0.0,
            "reverify_exact": 1.0 if reverify_exact else 0.0,
            "flip_match": 1.0 if flip_match else 0.0,
            "policy_verdict_match": 1.0 if policy_match else 0.0,
            "policy_reverify_exact": 1.0 if policy_reverify_exact else 0.0,
            "policy_queries": len(pcold.queries),
            "policy_reverified": len(pcold.reverified()),
            "cloud_verdict_match": 1.0 if cloud_match else 0.0,
            "cloud_replayed": cloud_replayed,
            "reverified": len(cold.reverified()),
            "replayed": len(cold.replayed()),
            "warm_seconds": round(warm_s, 4),
            "fresh_new_seconds": round(fresh_new_s, 4),
            "speedup": round(speedup, 4),
        },
    )

    if failures:
        print(f"{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("diff smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
