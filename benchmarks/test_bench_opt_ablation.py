"""§8.3 optimization effectiveness: hoisting and slicing ablation.

The paper reports that prefix hoisting (replacing per-record 32-bit
advertised-prefix variables with tests on the global destination IP)
speeds verification up ~200x on average (460x max for large networks),
and that the slicing/merging optimizations add a further ~2.3x on top.

We measure single-source reachability (the paper's §8.3 workload) under
three encoder configurations:

* ``full``      — all optimizations (the default encoder);
* ``no-slice``  — hoisting only: field slicing, record merging, connected
  slicing and forwarding merging disabled;
* ``naive``     — everything off, including hoisting: every record carries
  an explicit symbolic prefix constrained by the 32-guard FBM formula.

The expected shape: naive ≫ no-slice > full, with the hoisting gap much
larger than the slicing gap.
"""

import time

import pytest

from repro import Verifier
from repro.core import properties as P
from repro.core.encoder import EncoderOptions
from repro.gen import build_cloud_network, build_fattree

from .harness import is_full, print_table

CONFIGS = {
    "full": EncoderOptions(),
    "no-slice": EncoderOptions(slice_fields=False,
                               merge_edge_records=False,
                               slice_connected=False, merge_fwd=False),
    "naive": EncoderOptions(hoist_prefixes=False, slice_fields=False,
                            merge_edge_records=False,
                            slice_connected=False, merge_fwd=False),
}


def measure(network, source, dst, options, budget=None):
    verifier = Verifier(network, options=options, conflict_budget=budget)
    prop = P.Reachability(sources=[source], dest_prefix_text=dst)
    start = time.perf_counter()
    result = verifier.verify(prop)
    return result, time.perf_counter() - start


def workloads():
    out = []
    tree = build_fattree(2)
    out.append(("fattree-2", tree.network, tree.tors[0],
                tree.tor_subnet(tree.tors[-1])))
    cloud = build_cloud_network(121)  # clean, small
    out.append((cloud.name, cloud.network,
                cloud.network.router_names()[0],
                cloud.management_prefixes[0]))
    if is_full():
        tree4 = build_fattree(4)
        out.append(("fattree-4", tree4.network, tree4.tors[0],
                    tree4.tor_subnet(tree4.tors[-1])))
    return out


def test_ablation_table(capsys):
    rows = []
    for name, network, source, dst in workloads():
        times = {}
        sizes = {}
        verdicts = set()
        for config_name, options in CONFIGS.items():
            result, seconds = measure(network, source, dst, options)
            times[config_name] = seconds
            sizes[config_name] = (result.num_variables,
                                  result.num_clauses)
            verdicts.add(result.holds)
        # All configurations must agree on the verdict.
        assert len(verdicts) == 1, (name, verdicts)
        hoist_speedup = times["naive"] / max(times["no-slice"], 1e-9)
        slice_speedup = times["no-slice"] / max(times["full"], 1e-9)
        total = times["naive"] / max(times["full"], 1e-9)
        rows.append([
            name,
            f"{times['full'] * 1e3:.0f}",
            f"{times['no-slice'] * 1e3:.0f}",
            f"{times['naive'] * 1e3:.0f}",
            f"{hoist_speedup:.1f}x",
            f"{slice_speedup:.1f}x",
            f"{total:.1f}x",
            f"{sizes['full'][0]}/{sizes['naive'][0]}",
        ])
        # Shape: the naive encoding is the slowest and carries far more
        # variables (the per-record 32-bit prefixes).
        assert sizes["naive"][0] > sizes["no-slice"][0]
        assert sizes["no-slice"][0] >= sizes["full"][0]
    with capsys.disabled():
        print_table(
            "§8.3 ablation: single-source reachability "
            "(paper: hoisting ~200x avg, slicing ~2.3x)",
            ["workload", "full ms", "no-slice ms", "naive ms",
             "hoisting speedup", "slicing speedup", "total",
             "vars full/naive"],
            rows)


@pytest.mark.benchmark(group="ablation")
@pytest.mark.parametrize("config", list(CONFIGS))
def test_benchmark_encodings(benchmark, config):
    tree = build_fattree(2)
    dst = tree.tor_subnet(tree.tors[-1])
    benchmark.pedantic(
        lambda: measure(tree.network, tree.tors[0], dst, CONFIGS[config]),
        rounds=1, iterations=1)
