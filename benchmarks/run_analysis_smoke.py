"""Fast static-analysis smoke check for `make check` / CI.

Takes the 20-router fat-tree (4 pods), seeds one provably dead clause
into each core's BACKBONE_IN import map, then:

* runs the full rule catalog (SMT rules included) and checks the
  shadow prover finds exactly the seeded clauses;
* verifies a reachability property with ``prune_dead_clauses`` and
  with ``prune_cold_clauses`` and asserts the verdict is identical
  while dead-clause pruning shrinks the encoded formula;
* runs the cross-device dataflow fixpoint and checks it converges
  without widening, that the dataflow-tightened cones for a rack's
  reachability/loop queries stay bounded, and that cold-clause
  pruning for a rack destination actually drops clauses;
* seeds an asymmetric-egress defect into a fresh 2-pod tree and
  checks XDF004 fires exactly once.

The 20-router query uses a violated (SAT) instance so the check stays
fast; a seeded 2-pod tree re-checks verdict equality on a holding
(UNSAT) instance, covering both flip directions.  The slow exhaustive
verdict-preservation matrix lives in ``tests/analysis/test_pruning.py``.

Writes ``benchmarks/out/BENCH_analysis.json``; ``compare_bench.py``
hard-gates the deterministic counts (cone sizes, rules fired,
pruned-clause counts) and treats timing as warn-only.
Exits non-zero on any mismatch.
"""

import sys
import time
from dataclasses import replace

from repro.analysis import analyze_network
from repro.analysis.dataflow import analyze_dataflow, prune_cold_for_prefix
from repro.analysis.deps import query_cone
from repro.analysis.pruning import prune_network
from repro.core import properties as P
from repro.core.encoder import EncoderOptions
from repro.core.verifier import Verifier
from repro.gen import build_fattree
from repro.net import ip as iplib
from repro.net.policy import (
    DENY,
    PERMIT,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)

from benchmarks.harness import emit_metrics

DEAD_SEQ = 20


def seed_dead_clauses(network, cores):
    """Append a shadowed clause to each core's import map: same match
    as the reachable seq-10 clause, so it is provably unreachable, and
    the only ``set local-preference`` in the network, so pruning it
    lets field slicing shrink the formula."""
    for core in cores:
        dev = network.device(core)
        rmap = dev.route_maps["BACKBONE_IN"]
        dead = RouteMapClause(seq=DEAD_SEQ, action="permit",
                              match_prefix_list="BLOCK_INTERNAL",
                              set_local_pref=50)
        dev.route_maps["BACKBONE_IN"] = replace(
            rmap, clauses=rmap.clauses + (dead,))


def own_rack_map(tree, map_name):
    """A deny-own-rack / permit-rest policy on the first ToR."""
    tor = tree.tors[0]
    dev = tree.network.device(tor)
    rack_net, rack_len = iplib.parse_prefix(tree.tor_subnet(tor))
    dev.prefix_lists["OWN_RACK"] = PrefixList(
        "OWN_RACK", (PrefixListEntry(PERMIT, rack_net, rack_len),))
    dev.route_maps[map_name] = RouteMap(map_name, (
        RouteMapClause(10, DENY, match_prefix_list="OWN_RACK"),
        RouteMapClause(20, PERMIT),
    ))
    return tor, dev


def seed_asymmetric_export(tree):
    """Deny the first ToR's own rack toward ONE of its (>= 2)
    aggregation uplinks: the textbook XDF004 asymmetry."""
    tor, dev = own_rack_map(tree, "LEAN")
    dev.bgp.neighbors[0].route_map_out = "LEAN"
    return tor


def seed_rack_policy(tree):
    """Import policy on the first ToR denying its own rack — a no-op
    for traffic (the rack is connected; AD beats BGP) and provably
    cold for every *other* rack's destination."""
    tor, dev = own_rack_map(tree, "RACK_POLICY")
    dev.bgp.neighbors[0].route_map_in = "RACK_POLICY"
    return tor


def verify_matrix(network, prop):
    """Verify ``prop`` plain, with dead-clause pruning, and with
    cold-clause pruning; both pruned verdicts must match the base."""
    base = Verifier(network, options=EncoderOptions()).verify(prop)
    dead = Verifier(network, options=EncoderOptions(
        prune_dead_clauses=True)).verify(prop)
    cold = Verifier(network, options=EncoderOptions(
        prune_cold_clauses=True)).verify(prop)
    return base, dead, cold


def cone_size(cone):
    devices = sum(1 for frags in cone.fragments.values() if frags)
    return devices, cone.total_fragments()


def main() -> int:
    start = time.perf_counter()
    tree = build_fattree(4)
    network = tree.network
    seed_dead_clauses(network, tree.cores)

    report = analyze_network(network, smt=True)
    print(f"rules run: {len(report.rules_run)} "
          f"({', '.join(sorted(report.rules_run))})")
    for diag in report.sorted():
        print(f"  {diag}")
    shadowed = report.by_rule("SMT001")
    if len(shadowed) != len(tree.cores):
        print(f"expected {len(tree.cores)} shadowed clauses, "
              f"found {len(shadowed)}", file=sys.stderr)
        return 1
    if any(f"seq {DEAD_SEQ}" not in d.message for d in shadowed):
        print("shadow prover flagged the wrong clause", file=sys.stderr)
        return 1
    others = [d for d in report.diagnostics if d.rule_id != "SMT001"]
    if others:
        print(f"unexpected findings: {others}", file=sys.stderr)
        return 1

    _, prune_report = prune_network(network)
    print(f"pruned {prune_report.count} clauses "
          f"across {prune_report.maps_examined} maps")
    if prune_report.count != len(tree.cores):
        print("pruning disagrees with the shadow prover", file=sys.stderr)
        return 1

    # --- dataflow fixpoint, cones, cold-clause pruning ---------------
    df = analyze_dataflow(network)
    print(f"dataflow fixpoint: {df.iterations} iterations, "
          f"widened={df.widened}")
    if df.widened:
        print("dataflow fixpoint widened on the fat-tree",
              file=sys.stderr)
        return 1

    rack = tree.tor_subnet(tree.tors[0])
    reach_cone = query_cone(
        network, P.Reachability(sources="all", dest_prefix_text=rack))
    loops_cone = query_cone(network, P.NoForwardingLoops(
        dest_prefix_text=rack))
    if reach_cone is None or loops_cone is None:
        print("rack queries are not cacheable", file=sys.stderr)
        return 1
    if not (reach_cone.bounded and loops_cone.bounded):
        print("rack-query cones fell back to the full network",
              file=sys.stderr)
        return 1
    reach_devices, reach_fragments = cone_size(reach_cone)
    loops_devices, loops_fragments = cone_size(loops_cone)
    print(f"cones at {rack}: reach {reach_fragments} fragments on "
          f"{reach_devices} device(s), loops {loops_fragments} on "
          f"{loops_devices}")

    # --- seeded cross-device defect ----------------------------------
    # 4 pods so the ToR has two uplinks to be asymmetric across.
    xdf_tree = build_fattree(4)
    xdf_tor = seed_asymmetric_export(xdf_tree)
    xdf = analyze_network(xdf_tree.network, smt=False).by_rule("XDF004")
    print(f"seeded asymmetry on {xdf_tor}: {len(xdf)} XDF004 finding(s)")
    if len(xdf) != 1:
        print("expected exactly one XDF004 finding", file=sys.stderr)
        return 1

    # The seeded import deny matches only the first ToR's own rack, so
    # it is provably cold for every OTHER rack's destination — and
    # pruning it there must not move the verdict.
    cold_tree = build_fattree(2)
    seed_rack_policy(cold_tree)
    other = cold_tree.tor_subnet(cold_tree.tors[1])
    _, cold_pruned = prune_cold_for_prefix(
        cold_tree.network, iplib.parse_prefix(other))
    print(f"cold-clause pruning for {other}: {cold_pruned} clause(s)")
    if cold_pruned != 1:
        print("expected exactly the seeded deny to be cold",
              file=sys.stderr)
        return 1
    xbase, xdead, xcold = verify_matrix(
        cold_tree.network,
        P.Reachability(sources="all", dest_prefix_text=other))
    print(f"seeded fat-tree(2) verdict: holds={xbase.holds} "
          f"(dead-pruned: {xdead.holds}, cold-pruned: {xcold.holds})")
    cold_match = xbase.holds is xdead.holds is xcold.holds is True
    if not cold_match:
        print("verdict mismatch after pruning the cold deny",
              file=sys.stderr)
        return 1

    # Violated instance on the 20-router tree: the destination prefix
    # is owned by no rack, so reachability fails — quickly — and the
    # formula sizes are representative of the full network.
    base, dead, cold = verify_matrix(
        network, P.Reachability(sources="all",
                                dest_prefix_text="10.0.8.0/24"))
    print(f"fat-tree(4) verdict: holds={base.holds} "
          f"(dead-pruned: {dead.holds}, cold-pruned: {cold.holds})")
    print(f"variables: {base.num_variables} -> {dead.num_variables} "
          f"({base.num_variables - dead.num_variables} fewer)")
    print(f"clauses:   {base.num_clauses} -> {dead.num_clauses} "
          f"({base.num_clauses - dead.num_clauses} fewer)")
    big_match = base.holds is dead.holds is cold.holds is False
    if not big_match:
        print("verdict mismatch on the violated instance",
              file=sys.stderr)
        return 1
    if not (dead.num_variables < base.num_variables
            and dead.num_clauses < base.num_clauses):
        print("pruning did not shrink the formula", file=sys.stderr)
        return 1

    # Holding instance on a seeded 2-pod tree: the UNSAT direction.
    small = build_fattree(2)
    seed_dead_clauses(small.network, small.cores)
    sbase, sdead, scold = verify_matrix(
        small.network,
        P.Reachability(sources="all",
                       dest_prefix_text=small.tor_subnet(small.tors[0])))
    print(f"fat-tree(2) verdict: holds={sbase.holds} "
          f"(dead-pruned: {sdead.holds}, cold-pruned: {scold.holds})")
    small_match = sbase.holds is sdead.holds is scold.holds is True
    if not small_match:
        print("verdict mismatch on the holding instance",
              file=sys.stderr)
        return 1

    elapsed = time.perf_counter() - start
    emit_metrics("analysis", {
        "pods": 4,
        "seconds": round(elapsed, 4),
        "smt_findings": len(shadowed),
        "pruned_dead": prune_report.count,
        "fixpoint_iterations": df.iterations,
        "fixpoint_widened": 1.0 if df.widened else 0.0,
        "cone_reach_devices": reach_devices,
        "cone_reach_fragments": reach_fragments,
        "cone_loops_devices": loops_devices,
        "cone_loops_fragments": loops_fragments,
        "cold_clauses_pruned": cold_pruned,
        "cold_verdict_match": 1.0
        if (big_match and small_match and cold_match) else 0.0,
        "xdf_findings": len(xdf),
    })

    print(f"analysis smoke OK ({elapsed:.1f} s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
