"""Fast static-analysis smoke check for `make check` / CI (< 30 s).

Takes the 20-router fat-tree (4 pods), seeds one provably dead clause
into each core's BACKBONE_IN import map, then:

* runs the full rule catalog (SMT rules included) and checks the
  shadow prover finds exactly the seeded clauses;
* verifies a reachability property with and without
  ``prune_dead_clauses`` and asserts the verdict is identical while
  the encoded formula shrinks.

The 20-router query uses a violated (SAT) instance so the check stays
fast; a seeded 2-pod tree re-checks verdict equality on a holding
(UNSAT) instance, covering both flip directions.  The slow exhaustive
verdict-preservation matrix lives in ``tests/analysis/test_pruning.py``.

Prints the rules run, the diagnostics, and the variable/clause deltas.
Exits non-zero on any mismatch.
"""

import sys
import time
from dataclasses import replace

from repro.analysis import analyze_network
from repro.analysis.pruning import prune_network
from repro.core import properties as P
from repro.core.encoder import EncoderOptions
from repro.core.verifier import Verifier
from repro.gen import build_fattree
from repro.net.policy import RouteMapClause

DEAD_SEQ = 20


def seed_dead_clauses(network, cores):
    """Append a shadowed clause to each core's import map: same match
    as the reachable seq-10 clause, so it is provably unreachable, and
    the only ``set local-preference`` in the network, so pruning it
    lets field slicing shrink the formula."""
    for core in cores:
        dev = network.device(core)
        rmap = dev.route_maps["BACKBONE_IN"]
        dead = RouteMapClause(seq=DEAD_SEQ, action="permit",
                              match_prefix_list="BLOCK_INTERNAL",
                              set_local_pref=50)
        dev.route_maps["BACKBONE_IN"] = replace(
            rmap, clauses=rmap.clauses + (dead,))


def verify_both(network, prop):
    results = {}
    for prune in (False, True):
        options = EncoderOptions(prune_dead_clauses=prune)
        results[prune] = Verifier(network, options=options).verify(prop)
    return results[False], results[True]


def main() -> int:
    start = time.perf_counter()
    tree = build_fattree(4)
    network = tree.network
    seed_dead_clauses(network, tree.cores)

    report = analyze_network(network, smt=True)
    print(f"rules run: {len(report.rules_run)} "
          f"({', '.join(sorted(report.rules_run))})")
    for diag in report.sorted():
        print(f"  {diag}")
    shadowed = report.by_rule("SMT001")
    if len(shadowed) != len(tree.cores):
        print(f"expected {len(tree.cores)} shadowed clauses, "
              f"found {len(shadowed)}", file=sys.stderr)
        return 1
    if any(f"seq {DEAD_SEQ}" not in d.message for d in shadowed):
        print("shadow prover flagged the wrong clause", file=sys.stderr)
        return 1
    others = [d for d in report.diagnostics if d.rule_id != "SMT001"]
    if others:
        print(f"unexpected findings: {others}", file=sys.stderr)
        return 1

    _, prune_report = prune_network(network)
    print(f"pruned {prune_report.count} clauses "
          f"across {prune_report.maps_examined} maps")
    if prune_report.count != len(tree.cores):
        print("pruning disagrees with the shadow prover", file=sys.stderr)
        return 1

    # Violated instance on the 20-router tree: the destination prefix
    # is owned by no rack, so reachability fails — quickly — and the
    # formula sizes are representative of the full network.
    base, pruned = verify_both(
        network, P.Reachability(sources="all",
                                dest_prefix_text="10.0.8.0/24"))
    print(f"fat-tree(4) verdict: holds={base.holds} "
          f"(pruned: holds={pruned.holds})")
    print(f"variables: {base.num_variables} -> {pruned.num_variables} "
          f"({base.num_variables - pruned.num_variables} fewer)")
    print(f"clauses:   {base.num_clauses} -> {pruned.num_clauses} "
          f"({base.num_clauses - pruned.num_clauses} fewer)")
    if base.holds is not pruned.holds or base.holds is not False:
        print("verdict mismatch on the violated instance",
              file=sys.stderr)
        return 1
    if not (pruned.num_variables < base.num_variables
            and pruned.num_clauses < base.num_clauses):
        print("pruning did not shrink the formula", file=sys.stderr)
        return 1

    # Holding instance on a seeded 2-pod tree: the UNSAT direction.
    small = build_fattree(2)
    seed_dead_clauses(small.network, small.cores)
    base, pruned = verify_both(
        small.network,
        P.Reachability(sources="all",
                       dest_prefix_text=small.tor_subnet(small.tors[0])))
    print(f"fat-tree(2) verdict: holds={base.holds} "
          f"(pruned: holds={pruned.holds})")
    if base.holds is not pruned.holds or base.holds is not True:
        print("verdict mismatch on the holding instance",
              file=sys.stderr)
        return 1

    print(f"analysis smoke OK ({time.perf_counter() - start:.1f} s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
