#!/usr/bin/env python3
"""Regenerate every table/figure of the paper's evaluation (§8).

Usage::

    python benchmarks/run_all.py            # quick subset
    REPRO_SCALE=full python benchmarks/run_all.py   # the whole thing

Prints the §8.1 violations table, the Figure 7 per-network series, the
Figure 8 size sweep, and the §8.3 optimization ablation, in order.  The
recorded outputs back EXPERIMENTS.md.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent))

from benchmarks.harness import SCALE, print_table  # noqa: E402


def main() -> None:
    print(f"REPRO_SCALE={SCALE}")

    from benchmarks.test_bench_violations import run_violation_sweep
    counts, seeded, mismatches, n = run_violation_sweep()
    paper = {"hijack": 67, "equivalence": 29, "blackhole": 24,
             "fault-invariance": 0}
    print_table(
        f"§8.1 violations over {n} networks (paper: 120 over 152)",
        ["check", "violations", "seeded", "paper (152 nets)"],
        [[k, counts[k], seeded.get(k, 0), paper[k]]
         for k in ("hijack", "equivalence", "blackhole",
                   "fault-invariance")])
    if mismatches:
        print("MISMATCHES:", mismatches)

    from benchmarks.test_bench_fig7_real import collect_series
    rows = collect_series()
    print_table(
        "Figure 7: per-network check time (ms) by config lines",
        ["network", "config lines", "mgmt-reach", "local-equiv",
         "blackholes", "fault-invariance"],
        rows)

    from benchmarks.test_bench_fig8_synthetic import (
        PROPERTIES,
        collect_fig8,
    )
    rows, verdicts = collect_fig8()
    print_table(
        "Figure 8: verification time (ms) per property vs. size",
        ["pods", "routers"] + PROPERTIES,
        rows)
    failing = {k: v for k, v in verdicts.items() if v is not True}
    if failing:
        print("UNEXPECTED VERDICTS:", failing)

    from benchmarks.test_bench_opt_ablation import (
        CONFIGS,
        measure,
        workloads,
    )
    ab_rows = []
    for name, network, source, dst in workloads():
        times = {}
        for config_name, options in CONFIGS.items():
            _result, seconds = measure(network, source, dst, options)
            times[config_name] = seconds
        ab_rows.append([
            name,
            f"{times['full'] * 1e3:.0f}",
            f"{times['no-slice'] * 1e3:.0f}",
            f"{times['naive'] * 1e3:.0f}",
            f"{times['naive'] / max(times['no-slice'], 1e-9):.1f}x",
            f"{times['no-slice'] / max(times['full'], 1e-9):.1f}x",
            f"{times['naive'] / max(times['full'], 1e-9):.1f}x",
        ])
    print_table(
        "§8.3 ablation (paper: hoisting ~200x avg / 460x max, "
        "slicing ~2.3x)",
        ["workload", "full ms", "no-slice ms", "naive ms",
         "hoisting speedup", "slicing speedup", "total"],
        ab_rows)


if __name__ == "__main__":
    main()
