"""Figure 8: verification time vs. data-center size for eight properties.

The paper sweeps folded-Clos BGP data centers from 5 to 405 routers
(2 to 18 pods) and reports per-property verification time for:
no-blackholes, multipath consistency, local consistency (spine
equivalence), single-/all-ToR reachability, single-/all-ToR bounded path
length, and equal-length within a pod.  We sweep the pod counts selected
by REPRO_SCALE with identical per-property queries; the paper's shape to
reproduce: blackholes/multipath cheap-ish, reachability and path-length
most expensive, and all-ToR ≈ single-ToR cost (one graph query, not N).
"""

import time

import pytest

from repro import Verifier
from repro.core import properties as P
from repro.gen import build_fattree

from .harness import fattree_pods, print_table

PROPERTIES = [
    "no-blackholes",
    "multipath-consistency",
    "local-consistency",
    "single-tor-reach",
    "all-tor-reach",
    "single-tor-bounded-len",
    "all-tor-bounded-len",
    "equal-length-pod",
]


def run_property(tree, name):
    verifier = Verifier(tree.network)
    dst_tor = tree.tors[-1]
    dst = tree.tor_subnet(dst_tor)
    other_tors = [t for t in tree.tors if t != dst_tor]
    start = time.perf_counter()
    if name == "no-blackholes":
        result = verifier.verify(P.NoBlackHoles(
            allowed=tree.cores, dest_prefix_text=dst))
    elif name == "multipath-consistency":
        result = verifier.verify(P.MultipathConsistency(
            dest_prefix_text=dst))
    elif name == "local-consistency":
        # Chained pairwise spine equivalence (n-1 queries, like §8.2).
        result = None
        for a, b in zip(tree.cores, tree.cores[1:]):
            result = verifier.verify_local_equivalence(a, b)
            if result.holds is False:
                break
        if result is None:  # single spine
            from repro.core.verifier import VerificationResult
            result = VerificationResult("LocalEquivalence", True)
    elif name == "single-tor-reach":
        result = verifier.verify(P.Reachability(
            sources=[other_tors[0]], dest_prefix_text=dst))
    elif name == "all-tor-reach":
        result = verifier.verify(P.Reachability(
            sources=other_tors, dest_prefix_text=dst))
    elif name == "single-tor-bounded-len":
        result = verifier.verify(P.BoundedPathLength(
            sources=[other_tors[0]], bound=4, dest_prefix_text=dst))
    elif name == "all-tor-bounded-len":
        result = verifier.verify(P.BoundedPathLength(
            sources=other_tors, bound=4, dest_prefix_text=dst))
    elif name == "equal-length-pod":
        # All ToRs of pod 0 (≠ destination pod) use equal-length paths.
        pod0 = [t for t in tree.tors
                if tree.pod_of(t) == 0 and t != dst_tor]
        result = verifier.verify(P.EqualPathLengths(
            routers=pod0, dest_prefix_text=dst))
    else:  # pragma: no cover
        raise ValueError(name)
    seconds = time.perf_counter() - start
    return result, seconds


def collect_fig8():
    rows = []
    verdicts = {}
    for pods in fattree_pods():
        tree = build_fattree(pods)
        row = [pods, len(tree.network.devices)]
        for name in PROPERTIES:
            result, seconds = run_property(tree, name)
            verdicts[(pods, name)] = result.holds
            row.append(round(seconds * 1e3))
        rows.append(row)
    return rows, verdicts


def test_fig8_series(capsys):
    rows, verdicts = collect_fig8()
    with capsys.disabled():
        print_table(
            "Figure 8: verification time (ms) per property vs. size",
            ["pods", "routers"] + PROPERTIES,
            rows)
    # All properties must HOLD on well-formed fat-trees.
    for key, holds in verdicts.items():
        assert holds is True, key
    # Shape check: the graph-based all-ToR query costs the same order as
    # the single-ToR query (within 4x), not |ToRs| times more.
    largest = max(r[0] for r in rows)
    row = next(r for r in rows if r[0] == largest)
    single = row[2 + PROPERTIES.index("single-tor-reach")]
    all_ = row[2 + PROPERTIES.index("all-tor-reach")]
    assert all_ <= max(4 * single, single + 2000)


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("prop", ["no-blackholes", "single-tor-reach"])
def test_benchmark_fig8_smallest(benchmark, prop):
    tree = build_fattree(2)
    benchmark.pedantic(lambda: run_property(tree, prop),
                       rounds=1, iterations=1)
