#!/usr/bin/env python3
"""Minimal table run for constrained environments (single-core boxes):
two networks per §8.1 bug class, the 2-pod Figure 8 point, and the small
ablation workloads.  Same harnesses as run_all.py, smallest inputs.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent))

from benchmarks.harness import print_table  # noqa: E402


def main() -> None:
    import benchmarks.test_bench_violations as violations
    violations.cloud_indices = lambda: [0, 5, 68, 69, 100, 101, 121, 130]
    counts, seeded, mismatches, n = violations.run_violation_sweep()
    paper = {"hijack": 67, "equivalence": 29, "blackhole": 24,
             "fault-invariance": 0}
    print_table(
        f"§8.1 violations over {n} networks (paper: 120 over 152)",
        ["check", "violations", "seeded", "paper (152 nets)"],
        [[k, counts[k], seeded.get(k, 0), paper[k]]
         for k in ("hijack", "equivalence", "blackhole",
                   "fault-invariance")])
    if mismatches:
        print("MISMATCHES:", mismatches)

    import benchmarks.test_bench_fig7_real as fig7
    fig7.cloud_indices = lambda: [0, 69, 101, 121]
    rows = fig7.collect_series()
    print_table(
        "Figure 7: per-network check time (ms) by config lines",
        ["network", "config lines", "mgmt-reach", "local-equiv",
         "blackholes", "fault-invariance"],
        rows)

    import benchmarks.test_bench_fig8_synthetic as fig8
    import benchmarks.harness as harness
    fig8.fattree_pods = lambda: [2, 4]
    rows, verdicts = fig8.collect_fig8()
    print_table(
        "Figure 8: verification time (ms) per property vs. size",
        ["pods", "routers"] + fig8.PROPERTIES,
        rows)
    failing = {k: v for k, v in verdicts.items() if v is not True}
    if failing:
        print("UNEXPECTED VERDICTS:", failing)

    from benchmarks.test_bench_opt_ablation import CONFIGS, measure
    from repro.gen import build_cloud_network, build_fattree
    tree = build_fattree(2)
    cloud = build_cloud_network(121)
    workloads = [
        ("fattree-2", tree.network, tree.tors[0],
         tree.tor_subnet(tree.tors[-1])),
        (cloud.name, cloud.network, cloud.network.router_names()[0],
         cloud.management_prefixes[0]),
    ]
    ab_rows = []
    for name, network, source, dst in workloads:
        times = {}
        for config_name, options in CONFIGS.items():
            _result, seconds = measure(network, source, dst, options)
            times[config_name] = seconds
        ab_rows.append([
            name,
            f"{times['full'] * 1e3:.0f}",
            f"{times['no-slice'] * 1e3:.0f}",
            f"{times['naive'] * 1e3:.0f}",
            f"{times['naive'] / max(times['no-slice'], 1e-9):.1f}x",
            f"{times['no-slice'] / max(times['full'], 1e-9):.1f}x",
            f"{times['naive'] / max(times['full'], 1e-9):.1f}x",
        ])
    print_table(
        "§8.3 ablation (paper: hoisting ~200x avg / 460x max, "
        "slicing ~2.3x)",
        ["workload", "full ms", "no-slice ms", "naive ms",
         "hoisting speedup", "slicing speedup", "total"],
        ab_rows)


if __name__ == "__main__":
    main()
