#!/usr/bin/env python3
"""Regenerate just the figure benchmarks (no §8.1 sweep).

Useful when the violations table has already been produced: runs the
Figure 7 series (over a small sub-sample unless REPRO_SCALE=full),
the Figure 8 sweep, and the §8.3 ablation.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent))

from benchmarks.harness import SCALE, is_full, print_table  # noqa: E402


def main() -> None:
    print(f"REPRO_SCALE={SCALE}")

    import benchmarks.test_bench_fig7_real as fig7
    if not is_full():
        # Tighten the Figure 7 sample: one network per bug class plus two
        # clean ones spanning the size range.
        fig7.cloud_indices = lambda: [0, 69, 100, 121, 130, 11]

    from benchmarks.test_bench_fig7_real import collect_series
    rows = collect_series()
    print_table(
        "Figure 7: per-network check time (ms) by config lines",
        ["network", "config lines", "mgmt-reach", "local-equiv",
         "blackholes", "fault-invariance"],
        rows)

    from benchmarks.test_bench_fig8_synthetic import (
        PROPERTIES,
        collect_fig8,
    )
    rows, verdicts = collect_fig8()
    print_table(
        "Figure 8: verification time (ms) per property vs. size",
        ["pods", "routers"] + PROPERTIES,
        rows)
    failing = {k: v for k, v in verdicts.items() if v is not True}
    if failing:
        print("UNEXPECTED VERDICTS:", failing)

    from benchmarks.test_bench_opt_ablation import (
        CONFIGS,
        measure,
        workloads,
    )
    ab_rows = []
    for name, network, source, dst in workloads():
        times = {}
        for config_name, options in CONFIGS.items():
            _result, seconds = measure(network, source, dst, options)
            times[config_name] = seconds
        ab_rows.append([
            name,
            f"{times['full'] * 1e3:.0f}",
            f"{times['no-slice'] * 1e3:.0f}",
            f"{times['naive'] * 1e3:.0f}",
            f"{times['naive'] / max(times['no-slice'], 1e-9):.1f}x",
            f"{times['no-slice'] / max(times['full'], 1e-9):.1f}x",
            f"{times['naive'] / max(times['full'], 1e-9):.1f}x",
        ])
    print_table(
        "§8.3 ablation (paper: hoisting ~200x avg / 460x max, "
        "slicing ~2.3x)",
        ["workload", "full ms", "no-slice ms", "naive ms",
         "hoisting speedup", "slicing speedup", "total"],
        ab_rows)


if __name__ == "__main__":
    main()
