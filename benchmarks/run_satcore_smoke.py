"""SAT-core smoke check for `make check` / CI: arena + portfolio.

Exercises the two PR-level promises of the flat-arena CDCL core:

* **Fidelity** — on random 3-SAT and on a real fat-tree verification
  CNF, the arena solver and the list-based reference produce identical
  verdicts, identical full counter snapshots (conflicts, decisions,
  propagations, ...) and identical models.  These are deterministic
  for a fixed workload, so they hard-gate in ``compare_bench.py``.
* **Portfolio determinism** — racing diversified seeded workers with
  artificially skewed finish orders must return the same verdict and
  model every time (canonical winner = lowest seed with a verdict).

It also measures BCP throughput (``props_per_sec``) and the arena/
reference solve-time ratio (``solve_ratio``; > 1 means the arena is
faster).  Both are timing-derived and therefore warn-only in the gate.

Writes ``benchmarks/out/BENCH_satcore.json``.  ``--pods 2`` (the default) keeps
``make check`` fast; CI runs ``--pods 4``.
"""

import argparse
import random
import sys
import time

from repro.core import EncoderOptions, properties as P
from repro.core.encoder import NetworkEncoder
from repro.gen import build_fattree
from repro.net import ip as iplib
from repro.smt import Solver, not_
from repro.smt.sat import ReferenceSatSolver, SatSolver
from repro.smt.sat import portfolio as pf
from repro.smt.sat.portfolio import default_configs, race

from benchmarks.harness import emit_metrics, print_table


def random_cnf(seed, n=140, ratio=4.26):
    rng = random.Random(seed)
    return [[v if rng.random() < 0.5 else -v
             for v in rng.sample(range(1, n + 1), 3)]
            for _ in range(int(n * ratio))]


def fattree_cnf(pods):
    """The CNF of a negated all-ToR reachability check (normally UNSAT)."""
    tree = build_fattree(pods)
    subnet = tree.tor_subnet(tree.tors[0])
    enc = NetworkEncoder(tree.network, EncoderOptions()).encode(
        dst_prefix=iplib.parse_prefix(subnet))
    facade = Solver()
    facade.add(*enc.constraints, label="network")
    mark = enc.checkpoint()
    prop = P.Reachability(sources="all", dest_prefix_text=subnet)
    term = prop.encode(enc)
    facade.add(*enc.constraints_since(mark), label="instrumentation")
    facade.add(not_(term), label="property")
    return [list(c) for c in facade._cnf.clauses], facade._cnf.num_vars


def run_pair(clauses, num_vars, preprocess, budget=None):
    """(verdicts_equal, counters_equal, arena_seconds, ref_seconds)."""
    runs = []
    for cls in (SatSolver, ReferenceSatSolver):
        solver = cls()
        solver.preprocess_enabled = preprocess
        solver.ensure_vars(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        start = time.perf_counter()
        outcome = solver.solve(conflict_budget=budget)
        seconds = time.perf_counter() - start
        runs.append((outcome, solver.stats(), seconds, solver))
    (out_a, stats_a, sec_a, sol_a), (out_b, stats_b, sec_b, sol_b) = runs
    verdicts = out_a == out_b
    counters = stats_a == stats_b
    if verdicts and out_a:
        verdicts = all(sol_a.model_value(v) == sol_b.model_value(v)
                       for v in range(1, num_vars + 1))
    return verdicts, counters, sec_a, sec_b


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=2,
                        help="fat-tree pods for the encoding workload "
                             "(2 keeps `make check` fast; CI uses 4)")
    parser.add_argument("--seeds", type=int, default=4,
                        help="random-CNF workloads per preprocess mode")
    args = parser.parse_args(argv)

    failures = []

    def check(ok: bool, what: str) -> None:
        print(("ok  " if ok else "FAIL") + f"  {what}")
        if not ok:
            failures.append(what)

    # --- differential fidelity + throughput --------------------------
    all_verdicts = True
    all_counters = True
    arena_s = ref_s = 0.0
    arena_props = 0
    for seed in range(args.seeds):
        clauses = random_cnf(seed)
        for preprocess in (False, True):
            v, c, sa, sb = run_pair(clauses, 140, preprocess,
                                    budget=30000)
            all_verdicts &= v
            all_counters &= c
            arena_s += sa
            ref_s += sb
    # Re-measure propagation throughput on the arena alone (no
    # reference interleaving, stable denominator).
    start = time.perf_counter()
    for seed in range(args.seeds):
        solver = SatSolver()
        for clause in random_cnf(seed):
            solver.add_clause(clause)
        solver.solve(conflict_budget=30000)
        arena_props += solver.propagations
    props_per_sec = arena_props / (time.perf_counter() - start)

    ft_clauses, ft_vars = fattree_cnf(args.pods)
    for preprocess in (False, True):
        v, c, sa, sb = run_pair(ft_clauses, ft_vars, preprocess)
        all_verdicts &= v
        all_counters &= c
        arena_s += sa
        ref_s += sb

    check(all_verdicts, "arena verdicts/models identical to reference")
    check(all_counters, "arena counters identical to reference")
    solve_ratio = ref_s / arena_s if arena_s else float("inf")

    # --- portfolio determinism under skewed finish orders ------------
    outcomes = []
    try:
        for delays in ({}, {0: 0.25}, {1: 0.25}):
            pf._TEST_DELAYS.clear()
            pf._TEST_DELAYS.update(delays)
            result = race(random_cnf(1, n=60, ratio=4.0), 60,
                          configs=default_configs(3), timeout=120)
            outcomes.append((result.outcome, result.winner.seed,
                             result.model))
    finally:
        pf._TEST_DELAYS.clear()
    deterministic = len(set(map(repr, outcomes))) == 1
    check(deterministic,
          f"portfolio verdict/model stable under skew ({outcomes[0][0]})")

    print_table(f"SAT core smoke (fat-tree {args.pods} pods, "
                f"{args.seeds} random seeds)",
                ["props/s", "arena s", "ref s", "ratio", "portfolio"],
                [[f"{props_per_sec / 1000:.1f}k", f"{arena_s:.2f}",
                  f"{ref_s:.2f}", f"{solve_ratio:.2f}x",
                  "deterministic" if deterministic else "UNSTABLE"]])

    emit_metrics("satcore", {
        "pods": args.pods,
        "seeds": args.seeds,
        "verdict_match": 1.0 if all_verdicts else 0.0,
        "counter_match": 1.0 if all_counters else 0.0,
        "portfolio_deterministic": 1.0 if deterministic else 0.0,
        "props_per_sec": round(props_per_sec, 1),
        "arena_seconds": round(arena_s, 4),
        "reference_seconds": round(ref_s, 4),
        "solve_ratio": round(solve_ratio, 4),
    })

    if failures:
        print(f"{len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("satcore smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
