"""Serve-daemon smoke check for `make check` / CI.

Boots the real ``repro serve`` daemon as a subprocess and drives the
whole verification-as-a-service lifecycle over HTTP:

* **Cold vs fresh** — ingest a fat-tree snapshot, run per-rack
  reachability/loop queries, and compare every verdict against an
  in-process ``verify_batch`` that never saw the daemon
  (``cold_verdict_match``, hard-gated at 1.0).
* **Warm verdict replay** — repeat the identical batch: every verdict
  must replay from the snapshot's verdict cache, bit-identical
  (``warm_verdict_match``, ``warm_replayed``).
* **Warm encoding reuse** — a *different* query set in the same
  (dst-prefix, k) groups must hit the cross-request encoding cache:
  the response's per-request stats report hits and zero misses, every
  result carries ``encode_shared_seconds == 0`` (the parse/build/
  encode phases were skipped outright), and verdicts again match a
  fresh solve (``encoding_hit_on_warm``, ``warm_encode_skipped``,
  ``encoding_warm_verdict_match``).
* **Refresh as differential verification** — renumber one ToR's rack
  and refresh the snapshot in place: the next batch must replay every
  untouched-slice verdict and re-solve exactly the edited rack's
  query (``refresh_replay_exact``), with verdicts matching a fresh
  solve of the NEW configs (``refresh_verdict_match``).
* **Eviction under pressure** — a second daemon with a deliberately
  tiny ``--cache-bytes`` budget serves two snapshots: its cache must
  record evictions/rejections while verdicts stay correct
  (``eviction_exercised``, ``tiny_budget_verdict_match``).
* **Exposition health** — ``/metrics`` must parse under the strict
  Prometheus parser (``metrics_parse``).

All of the above are deterministic — hard gates at 1.0 in
``compare_bench.py``.  The warm-vs-cold latency ratio
(``warm_speedup``) is timing-derived and warn-only.

Writes ``benchmarks/out/BENCH_serve.json`` plus the daemon's log and
ledger as CI artifacts.  ``--pods 2`` (the default) keeps ``make
check`` fast; CI uses the same scale so the committed baseline always
matches.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

from repro.core import BatchQuery, properties as P, verify_batch
from repro.gen import build_fattree
from repro.lang.writer import write_config
from repro.net import load_network
from repro.obs.promexport import parse_exposition

from benchmarks.harness import emit_metrics, out_path, print_table
from benchmarks.run_diff_smoke import rack_queries, write_tree

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class ServeClient:
    """Tiny urllib client for one daemon instance."""

    def __init__(self, port: int, tenant: str = "smoke") -> None:
        self.port = port
        self.tenant = tenant

    def call(self, method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=data,
            method=method,
            headers={"X-Repro-Tenant": self.tenant},
        )
        with urllib.request.urlopen(request, timeout=300) as resp:
            return json.loads(resp.read())

    def text(self, path):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{self.port}{path}",
            timeout=60,
        ) as resp:
            return resp.read().decode()


def start_daemon(state_dir, log_path, ledger_path, cache_bytes=None):
    """Start ``repro serve`` on a free port; returns (proc, client)."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--state-dir",
        state_dir,
        "--log-json",
        log_path,
        "--ledger",
        ledger_path,
    ]
    if cache_bytes is not None:
        argv += ["--cache-bytes", str(cache_bytes)]
    env = dict(os.environ)
    paths = (os.path.join(ROOT, "src"), env.get("PYTHONPATH"))
    env["PYTHONPATH"] = os.pathsep.join(p for p in paths if p)
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=ROOT,
    )
    line = proc.stdout.readline().strip()
    if "listening on" not in line:
        raise RuntimeError(f"daemon failed to start: {line!r}")
    client = ServeClient(int(line.rsplit(":", 1)[1]))
    deadline = time.time() + 30
    while True:
        try:
            client.call("GET", "/healthz")
            return proc, client
        except (urllib.error.URLError, OSError):
            if time.time() > deadline:
                proc.terminate()
                raise
            time.sleep(0.1)


def stop_daemon(proc):
    proc.terminate()
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=15)


def query_spec(query):
    """The serve-API spec for one of ``rack_queries``'s BatchQuery."""
    prop = query.prop
    is_loops = type(prop).__name__ == "NoForwardingLoops"
    kind = "loops" if is_loops else "reachability"
    spec = {
        "property": kind,
        "dest_prefix": prop.dest_prefix_text,
        "label": query.label,
    }
    if kind == "reachability" and prop.sources != "all":
        spec["sources"] = list(prop.sources)
    return spec


def verdicts(results):
    return [r["holds"] for r in results]


def exact(flag):
    return 1.0 if flag else 0.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=2)
    args = parser.parse_args()

    ft = build_fattree(args.pods)
    network = ft.network
    tors = ft.tors
    subnets = [(tor, ft.tor_subnet(tor)) for tor in tors]
    edited = tors[0]
    texts = {
        f"{name}.cfg": write_config(dev)
        for name, dev in network.devices.items()
    }
    queries = rack_queries(subnets, skip_loops={edited})
    specs = [query_spec(q) for q in queries]

    log_path = out_path("serve_smoke.log.jsonl")
    ledger_path = out_path("serve_smoke.ledger.sqlite")
    for stale in (log_path, ledger_path):
        if os.path.exists(stale):
            os.remove(stale)

    metrics = {"pods": args.pods, "queries": len(queries)}
    with tempfile.TemporaryDirectory() as tmp:
        proc, client = start_daemon(
            os.path.join(tmp, "state"),
            log_path,
            ledger_path,
        )
        try:
            snap = client.call(
                "POST",
                "/v1/snapshots",
                {"configs": texts, "name": "prod"},
            )
            assert snap["snapshot"]["routers"] == len(network.devices)

            # Cold solve through the daemon vs a fresh in-process one.
            t0 = time.perf_counter()
            cold = client.call(
                "POST",
                "/v1/snapshots/prod/verify-batch",
                {"queries": specs},
            )
            cold_seconds = time.perf_counter() - t0
            fresh = verify_batch(network, queries)
            metrics["cold_verdict_match"] = exact(
                verdicts(cold["results"]) == [r.holds for r in fresh]
            )
            metrics["cold_misses"] = cold["stats"]["misses"]

            # Identical repeat: every verdict replays, bit-identical.
            t0 = time.perf_counter()
            warm = client.call(
                "POST",
                "/v1/snapshots/prod/verify-batch",
                {"queries": specs},
            )
            warm_seconds = time.perf_counter() - t0
            metrics["warm_verdict_match"] = exact(
                verdicts(warm["results"]) == verdicts(cold["results"])
            )
            metrics["warm_replayed"] = exact(
                warm["stats"]["verdicts_replayed"] == len(queries)
                and all(r["cached"] for r in warm["results"])
            )
            metrics["warm_speedup"] = (
                cold_seconds / warm_seconds if warm_seconds > 0 else 0.0
            )

            # New queries in the same groups: the *encoding* cache must
            # carry them — per-request hits, no misses, no shared-encode
            # time — while verdicts still match a fresh solve.
            enc_specs, enc_queries = [], []
            for tor, subnet in subnets:
                source = tors[1] if tor == edited else tors[0]
                label = f"reach-{tor}-from-{source}"
                prop = P.Reachability(
                    sources=[source],
                    dest_prefix_text=subnet,
                )
                enc_queries.append(BatchQuery(prop=prop, label=label))
                spec = {
                    "property": "reachability",
                    "sources": [source],
                    "dest_prefix": subnet,
                    "label": label,
                }
                enc_specs.append(spec)
            enc = client.call(
                "POST",
                "/v1/snapshots/prod/verify-batch",
                {"queries": enc_specs},
            )
            metrics["encoding_hit_on_warm"] = exact(
                enc["stats"]["hits"] >= 1
                and enc["stats"]["misses"] == 0
                and enc["stats"]["verdicts_replayed"] == 0
            )
            skipped = all(
                r["encode_shared_seconds"] == 0.0 for r in enc["results"]
            )
            metrics["warm_encode_skipped"] = exact(skipped)
            fresh_enc = verify_batch(network, enc_queries)
            metrics["encoding_warm_verdict_match"] = exact(
                verdicts(enc["results"]) == [r.holds for r in fresh_enc]
            )

            # Refresh with a renumbered rack: differential verification
            # over HTTP.  Only the edited rack's query may re-solve.
            # (Same edit as run_diff_smoke: rewrite the rack's octet
            # prefix so exactly one device's canonical form changes.)
            rack_net = dict(subnets)[edited].split("/")[0]
            old_rack = rack_net.rsplit(".", 1)[0] + "."
            new_dir = os.path.join(tmp, "new-tree")
            write_tree(
                network,
                new_dir,
                rename=(edited, old_rack, "10.250.0."),
            )
            new_network = load_network(new_dir)
            new_texts = {
                f"{name}.cfg": write_config(dev)
                for name, dev in new_network.devices.items()
            }
            refreshed = client.call(
                "POST",
                "/v1/snapshots/prod/refresh",
                {"configs": new_texts},
            )
            metrics["refresh_changed_exact"] = exact(
                refreshed["changes"]["changed_devices"] == [edited]
            )
            post = client.call(
                "POST",
                "/v1/snapshots/prod/verify-batch",
                {"queries": specs},
            )
            resolved = {
                q.label
                for q, r in zip(queries, post["results"])
                if not r["cached"]
            }
            metrics["refresh_replay_exact"] = exact(
                resolved == {f"reach-{edited}"}
            )
            fresh_post = verify_batch(new_network, queries)
            metrics["refresh_verdict_match"] = exact(
                verdicts(post["results"]) == [r.holds for r in fresh_post]
            )

            # Exposition must satisfy the strict parser.
            families = parse_exposition(client.text("/metrics"))
            metrics["metrics_parse"] = exact(
                "serve_cache_hit_total" in families
            )
            metrics["prom_families"] = float(len(families))
        finally:
            stop_daemon(proc)

        # Tiny byte budget: the cache must shed entries (evict or
        # reject) while the service stays verdict-correct.
        proc, client = start_daemon(
            os.path.join(tmp, "tiny-state"),
            out_path("serve_smoke_tiny.log.jsonl"),
            os.path.join(tmp, "tiny-ledger.sqlite"),
            cache_bytes=96 * 1024,
        )
        try:
            client.call(
                "POST",
                "/v1/snapshots",
                {"configs": texts, "name": "a"},
            )
            client.call(
                "POST",
                "/v1/snapshots",
                {"configs": new_texts, "name": "b"},
            )
            want = f"reach-{edited}"
            spec0 = [s for s in specs if s["label"] == want]
            tiny_a = client.call(
                "POST",
                "/v1/snapshots/a/verify-batch",
                {"queries": spec0},
            )
            tiny_b = client.call(
                "POST",
                "/v1/snapshots/b/verify-batch",
                {"queries": spec0},
            )
            health = client.call("GET", "/healthz")
            shed = (
                health["cache"]["evicted_lru"]
                + health["cache"]["evicted_ttl"]
                + health["cache"]["rejected"]
            )
            metrics["eviction_exercised"] = exact(shed >= 1)
            expect_a = [r.holds for r in fresh if r.property_name == want]
            expect_b = [
                r.holds for r in fresh_post if r.property_name == want
            ]
            metrics["tiny_budget_verdict_match"] = exact(
                verdicts(tiny_a["results"]) == expect_a
                and verdicts(tiny_b["results"]) == expect_b
            )
        finally:
            stop_daemon(proc)

    metrics["cold_seconds"] = round(cold_seconds, 4)
    metrics["warm_seconds"] = round(warm_seconds, 4)
    print_table(
        "serve smoke",
        ("metric", "value"),
        sorted((k, v) for k, v in metrics.items()),
    )
    emit_metrics("serve", metrics)

    hard = [
        "cold_verdict_match",
        "warm_verdict_match",
        "warm_replayed",
        "encoding_hit_on_warm",
        "warm_encode_skipped",
        "encoding_warm_verdict_match",
        "refresh_changed_exact",
        "refresh_replay_exact",
        "refresh_verdict_match",
        "eviction_exercised",
        "tiny_budget_verdict_match",
        "metrics_parse",
    ]
    failed = [name for name in hard if metrics[name] != 1.0]
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
