"""Bench-regression gate: compare fresh BENCH_*.json against baselines.

CI runs the smoke benchmarks (``run_batch_smoke``, ``run_obs_smoke``,
``run_preprocess_smoke``) on every push, then calls this script to
diff the fresh ``BENCH_<name>.json`` files in ``benchmarks/out/``
against the committed snapshots in ``benchmarks/baselines/``.  Only
ratio-style metrics are gated — speedups, overhead percentages,
reduction percentages — never raw seconds, which vary with the
runner.  Each gate has a tolerance band sized for CI noise.  Gates on
timing-derived ratios are warn-only (a loaded shared runner can dip
below any band without a real regression); only the deterministic
clause-reduction metric hard-fails the job.

Usage::

    python benchmarks/compare_bench.py            # gate, exit 1 on fail
    python benchmarks/compare_bench.py --update   # rebaseline

After an intentional performance change, run the smokes locally, then
``--update`` and commit the refreshed baselines with the change.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from dataclasses import dataclass
from typing import Optional

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_DIR = os.path.join(ROOT, "benchmarks", "baselines")
OUT_DIR = os.path.join(ROOT, "benchmarks", "out")
BENCHES = (
    "batch",
    "obs",
    "preprocess",
    "satcore",
    "diff",
    "analysis",
    "serve",
)


@dataclass
class Gate:
    """One gated metric with its tolerance band.

    ``higher_better`` picks the failing direction; the band is
    ``rel_tol`` (fraction of the baseline value) or ``abs_tol`` (same
    unit as the metric), whichever is looser.  ``floor`` and
    ``ceiling`` are hard limits applied regardless of the baseline —
    the acceptance criteria themselves.  ``hard`` decides whether an
    out-of-band value fails the job or only warns: timing-derived
    metrics are warn-only because shared CI runners make them noisy.
    """

    bench: str
    metric: str
    higher_better: bool
    rel_tol: float = 0.0
    abs_tol: float = 0.0
    floor: Optional[float] = None
    ceiling: Optional[float] = None
    hard: bool = True

    def allowed(self, baseline: float) -> float:
        slack = max(abs(baseline) * self.rel_tol, self.abs_tol)
        if self.higher_better:
            bound = baseline - slack
            if self.floor is not None:
                bound = max(bound, self.floor)
        else:
            bound = baseline + slack
            if self.ceiling is not None:
                bound = min(bound, self.ceiling)
        return bound

    def passes(self, fresh: float, baseline: float) -> bool:
        bound = self.allowed(baseline)
        return fresh >= bound if self.higher_better else fresh <= bound


# Timing-derived ratios (speedup, overhead, solve ratio) get wide
# bands and are warn-only: even wide bands can't make a shared runner
# deterministic, and a hard timing gate turns runner noise into flaky
# CI.  Clause reduction is deterministic for a fixed encoding, so it
# is the hard gate — tight band plus the >= 20% acceptance floor.
GATES = [
    Gate("batch", "speedup", True, rel_tol=0.65, floor=1.5, hard=False),
    Gate("obs", "overhead_pct", False, abs_tol=15.0, ceiling=25.0, hard=False),
    # Ledger recording and run-over-run comparison are deterministic
    # (count-based metrics, fixed workload): hard floors, no band.
    Gate("obs", "history_compare_identical", True, floor=1.0),
    Gate("obs", "history_compare_seeded", True, floor=1.0),
    Gate("obs", "ledger_runs", True, floor=3.0),
    # Family count shifts when instrumentation is added/removed; only
    # a collapse to (near) nothing means the exposition broke.
    Gate("obs", "prom_families", True, rel_tol=0.5, floor=1.0),
    Gate("preprocess", "clause_reduction_pct", True, abs_tol=2.0, floor=20.0),
    Gate("preprocess", "solve_ratio", True, rel_tol=0.5, hard=False),
    # SAT-core differential identity and portfolio determinism are
    # exact for a fixed workload: hard floors at 1.0, no band.
    Gate("satcore", "verdict_match", True, floor=1.0),
    Gate("satcore", "counter_match", True, floor=1.0),
    Gate("satcore", "portfolio_deterministic", True, floor=1.0),
    Gate("satcore", "props_per_sec", True, rel_tol=0.5, hard=False),
    Gate("satcore", "solve_ratio", True, rel_tol=0.5, hard=False),
    # Differential verification: verdict identity with full re-solving,
    # the exact expected re-verify set, and the seeded flip are all
    # deterministic — hard floors at 1.0.  The warm-cache speedup over
    # a fresh verification of the NEW tree is timing-derived: warn-only
    # above the 3x acceptance floor.
    Gate("diff", "verdict_match", True, floor=1.0),
    Gate("diff", "reverify_exact", True, floor=1.0),
    Gate("diff", "flip_match", True, floor=1.0),
    Gate("diff", "policy_verdict_match", True, floor=1.0),
    Gate("diff", "policy_reverify_exact", True, floor=1.0),
    Gate("diff", "cloud_verdict_match", True, floor=1.0),
    Gate("diff", "speedup", True, rel_tol=0.65, floor=3.0, hard=False),
    # Static-analysis dataflow: every gated count is deterministic for
    # the fixed seeded fat-tree, so the bands are zero.  Cold-clause
    # pruning must stay verdict-identical, the fixpoint must converge
    # without widening, the dataflow-tightened cones must not grow
    # back toward the structural widening, and pruning/rule power must
    # not silently regress.  Wall-clock is warn-only as usual.
    Gate("analysis", "cold_verdict_match", True, floor=1.0),
    Gate("analysis", "fixpoint_widened", False, ceiling=0.0),
    Gate("analysis", "cone_reach_fragments", False),
    Gate("analysis", "cone_reach_devices", False),
    Gate("analysis", "cone_loops_fragments", False),
    Gate("analysis", "cold_clauses_pruned", True),
    Gate("analysis", "xdf_findings", True, floor=1.0),
    Gate("analysis", "seconds", False, rel_tol=1.0, hard=False),
    # Verification-as-a-service: every correctness metric is exact for
    # the fixed workload — verdict identity between daemon paths (cold,
    # verdict-replay warm, encoding-warm, post-refresh, tiny-budget)
    # and fresh in-process solves, the exact differential re-solve set
    # after a refresh, cache-hit/eviction evidence, and strict
    # exposition parsing.  The warm-vs-cold latency ratio is the usual
    # warn-only timing gate.
    Gate("serve", "cold_verdict_match", True, floor=1.0),
    Gate("serve", "warm_verdict_match", True, floor=1.0),
    Gate("serve", "warm_replayed", True, floor=1.0),
    Gate("serve", "encoding_hit_on_warm", True, floor=1.0),
    Gate("serve", "warm_encode_skipped", True, floor=1.0),
    Gate("serve", "encoding_warm_verdict_match", True, floor=1.0),
    Gate("serve", "refresh_changed_exact", True, floor=1.0),
    Gate("serve", "refresh_replay_exact", True, floor=1.0),
    Gate("serve", "refresh_verdict_match", True, floor=1.0),
    Gate("serve", "eviction_exercised", True, floor=1.0),
    Gate("serve", "tiny_budget_verdict_match", True, floor=1.0),
    Gate("serve", "metrics_parse", True, floor=1.0),
    Gate("serve", "warm_speedup", True, rel_tol=0.65, floor=2.0, hard=False),
]

# Exact command to regenerate a bench at the baseline configuration —
# printed on a pods mismatch so the local flow (`make check` writes a
# --pods 2 BENCH_preprocess.json, the baselines are --pods 4) is
# self-repairing.
RERUN = {
    "batch": "PYTHONPATH=src:. python benchmarks/run_batch_smoke.py",
    "obs": "PYTHONPATH=src:. python benchmarks/run_obs_smoke.py --pods {pods}",
    "preprocess": (
        "PYTHONPATH=src:. python benchmarks/run_preprocess_smoke.py"
        " --pods {pods}"
    ),
    "satcore": (
        "PYTHONPATH=src:. python benchmarks/run_satcore_smoke.py --pods {pods}"
    ),
    "diff": (
        "PYTHONPATH=src:. python benchmarks/run_diff_smoke.py --pods {pods}"
    ),
    "analysis": "PYTHONPATH=src:. python benchmarks/run_analysis_smoke.py",
    "serve": (
        "PYTHONPATH=src:. python benchmarks/run_serve_smoke.py --pods {pods}"
    ),
}


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _fresh_path(bench: str) -> str:
    return os.path.join(OUT_DIR, f"BENCH_{bench}.json")


def _baseline_path(bench: str) -> str:
    return os.path.join(BASELINE_DIR, f"BENCH_{bench}.json")


def update(benches=BENCHES) -> int:
    os.makedirs(BASELINE_DIR, exist_ok=True)
    for bench in benches:
        fresh = _fresh_path(bench)
        if not os.path.exists(fresh):
            print(
                f"missing {fresh}; run the {bench} smoke first",
                file=sys.stderr,
            )
            return 1
        shutil.copyfile(fresh, _baseline_path(bench))
        print(f"rebaselined {bench} from {os.path.basename(fresh)}")
    return 0


def compare(benches=BENCHES) -> int:
    failures = 0
    warnings = 0
    mismatched = set()
    rows = []
    for gate in GATES:
        if gate.bench not in benches:
            continue
        fresh_doc = _load(_fresh_path(gate.bench))
        base_doc = _load(_baseline_path(gate.bench))
        if fresh_doc.get("pods") != base_doc.get("pods"):
            if gate.bench not in mismatched:
                mismatched.add(gate.bench)
                cmd = RERUN[gate.bench].format(pods=base_doc.get("pods"))
                print(
                    f"{gate.bench}: fresh pods={fresh_doc.get('pods')} vs "
                    f"baseline pods={base_doc.get('pods')} — rerun the "
                    f"smoke at the baseline configuration:\n    {cmd}",
                    file=sys.stderr,
                )
                failures += 1
            continue
        fresh = float(fresh_doc[gate.metric])
        baseline = float(base_doc[gate.metric])
        ok = gate.passes(fresh, baseline)
        if ok:
            status = "ok  "
        elif gate.hard:
            status = "FAIL"
            failures += 1
        else:
            status = "warn"
            warnings += 1
        direction = ">=" if gate.higher_better else "<="
        rows.append(
            (
                status,
                f"{gate.bench}.{gate.metric}",
                f"{fresh:.2f}",
                f"{direction} {gate.allowed(baseline):.2f}",
                f"(baseline {baseline:.2f})",
            )
        )
    width = max(len(row[1]) for row in rows) if rows else 0
    for status, name, fresh, bound, base in rows:
        print(f"{status}  {name:<{width}}  {fresh:>8}  {bound:<12} {base}")
    if warnings:
        print(
            f"{warnings} timing gate(s) out of band (warn-only: likely "
            "runner noise; rerun locally if a real regression is "
            "suspected)",
            file=sys.stderr,
        )
    if failures:
        print(
            f"{failures} bench gate(s) failed — if intentional, rerun "
            "the smokes and rebaseline with --update",
            file=sys.stderr,
        )
        return 1
    print("bench gates OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy fresh BENCH_*.json over the committed baselines",
    )
    parser.add_argument(
        "--benches",
        default=None,
        metavar="A,B",
        help="only gate (or rebaseline) these benches — lets split CI "
        "jobs each compare the BENCH files they actually produced "
        f"(default: all of {','.join(BENCHES)})",
    )
    args = parser.parse_args(argv)
    if args.benches is None:
        benches = BENCHES
    else:
        benches = tuple(b.strip() for b in args.benches.split(",") if b)
        unknown = [b for b in benches if b not in BENCHES]
        if unknown:
            parser.error(f"unknown bench(es): {', '.join(unknown)}")
    return update(benches) if args.update else compare(benches)


if __name__ == "__main__":
    sys.exit(main())
